//! Reference network: the by-value simulation engine.
//!
//! A re-implementation of `noc_sim::network::Network` with none of the
//! optimized kernel's machinery: flits travel through events **by
//! value** (no arena handles), source/reassembly bookkeeping uses plain
//! `HashMap`s (no dense packet windows), routes are computed on demand
//! (no route tables), and every phase scans every router and VC every
//! cycle (no skip counters). The phase order, event timing, and RNG
//! consumption are contractually identical to the optimized engine —
//! that is exactly what the differential oracle verifies.

use crate::refrouter::{BufferedFlit, PendingRetransmit, RefRouter, VcState};
use noc_coding::arq::{AckKind, SequenceNumber};
use noc_coding::crc::Crc32;
use noc_sim::config::NocConfig;
use noc_sim::error_control::{EjectOutcome, ErrorControl, HopOutcome, TransferKind};
use noc_sim::flit::{splitmix64, Flit, Packet, PacketClass, PacketId};
use noc_sim::network::{HardFaultEvent, HardFaultKind};
use noc_sim::routing::FaultRoutes;
use noc_sim::stats::{EventCounters, NetworkStats, RouterEpochStats};
use noc_sim::topology::{Direction, LinkId, NodeId, Topo, MAX_PORTS};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Event-wheel horizon in cycles; all scheduled events must land within
/// this many cycles of the present.
const WHEEL: u64 = 64;

/// A scheduled simulation event. Flits ride the events by value.
#[derive(Debug, Clone)]
enum Event {
    /// A flit reaches the downstream end of `link`.
    Arrival {
        link: LinkId,
        vc: u8,
        flit: Flit,
        seq: Option<SequenceNumber>,
        kind: TransferKind,
        /// Whether a proactive duplicate was sent one cycle behind
        /// (captured at send time; mode 2).
        pre_sent: bool,
    },
    /// A pre-retransmitted copy that was already accepted lands in the
    /// downstream buffer (one cycle after the rejected original).
    DirectDeliver {
        node: NodeId,
        in_port: Direction,
        vc: u8,
        flit: Flit,
    },
    /// A flit leaves through the local port into the destination core.
    Eject { node: NodeId, flit: Flit },
    /// A buffer credit returns to the upstream router's output port.
    Credit {
        node: NodeId,
        port: Direction,
        vc: u8,
    },
    /// An ACK/NACK side-band signal reaches the sending router.
    AckSignal {
        node: NodeId,
        port: Direction,
        seq: SequenceNumber,
        kind: AckKind,
    },
}

/// Cyclic event wheel (allocate-per-slot; no buffer recycling).
#[derive(Debug)]
struct Wheel {
    slots: Vec<Vec<Event>>,
}

impl Wheel {
    fn new() -> Self {
        Self {
            slots: (0..WHEEL).map(|_| Vec::new()).collect(),
        }
    }

    fn push(&mut self, now: u64, at: u64, event: Event) {
        assert!(at > now, "events must be scheduled in the future");
        assert!(at - now < WHEEL, "event horizon exceeded");
        self.slots[(at % WHEEL) as usize].push(event);
    }

    fn take(&mut self, cycle: u64) -> Vec<Event> {
        std::mem::take(&mut self.slots[(cycle % WHEEL) as usize])
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

/// Progress of a packet being injected flit-by-flit at a node.
#[derive(Debug, Clone)]
struct InjectProgress {
    packet: Packet,
    attempt: u8,
    next_flit: u8,
    vc: u8,
}

/// Hard-fault bookkeeping, mirroring the optimized engine's state: the
/// pending schedule, liveness marks, the fault-adaptive route table
/// (built at the first applied event), and the set of packets lost to
/// faults ("doomed" — their surviving flits evaporate on arrival
/// instead of being forwarded).
#[derive(Debug)]
struct RefFaultState {
    events: Vec<HardFaultEvent>,
    next_event: usize,
    node_dead: Vec<bool>,
    /// `link_dead[node][port]`: the channel at `node` in that direction
    /// is dead. Kept symmetric with the peer's opposite entry.
    link_dead: Vec<[bool; MAX_PORTS]>,
    /// `Some` once the first fault event has been applied; the network
    /// then routes via this table instead of X-Y.
    routes: Option<FaultRoutes>,
    /// Packets that lost at least one flit (or their source/destination
    /// router) to a hard fault.
    doomed: BTreeSet<PacketId>,
}

impl RefFaultState {
    fn new(events: Vec<HardFaultEvent>, n: usize) -> Self {
        Self {
            events,
            next_event: 0,
            node_dead: vec![false; n],
            link_dead: vec![[false; MAX_PORTS]; n],
            routes: None,
            doomed: BTreeSet::new(),
        }
    }

    /// Marks the channel `node → dir` (and its reverse) dead.
    fn kill_link(&mut self, mesh: Topo, node: NodeId, dir: Direction) {
        self.link_dead[node.index()][dir.index()] = true;
        if let Some(peer) = mesh.neighbor(node, dir) {
            self.link_dead[peer.index()][dir.opposite().index()] = true;
        }
    }

    /// Records `id` as lost; returns `true` when newly recorded and the
    /// packet carries data (i.e. counts toward `packets_lost_faults`).
    fn doom(&mut self, id: PacketId, is_data: bool) -> bool {
        self.doomed.insert(id) && is_data
    }
}

/// The reference simulation engine, generic over the same
/// [`ErrorControl`] extension point as the optimized kernel.
#[derive(Debug)]
pub struct RefNetwork<E: ErrorControl> {
    config: NocConfig,
    mesh: Topo,
    protocol: E,
    routers: Vec<RefRouter>,
    crc: Crc32,
    cycle: u64,
    wheel: Wheel,
    source_queues: Vec<VecDeque<(Packet, u8)>>,
    inject_progress: Vec<Option<InjectProgress>>,
    next_inject_vc: Vec<u8>,
    /// Source store: packets awaiting confirmed delivery, with their
    /// retransmission attempt count.
    pending_packets: HashMap<PacketId, (Packet, u8)>,
    /// Destination reassembly, keyed by (packet, attempt).
    reassembly: HashMap<(PacketId, u8), Vec<Flit>>,
    next_packet_id: u64,
    payload_seed: u64,
    stats: NetworkStats,
    epoch: Vec<RouterEpochStats>,
    counters: Vec<EventCounters>,
    /// Hard-fault bookkeeping; `None` while the topology is intact.
    faults: Option<Box<RefFaultState>>,
    /// Packets doomed during the current RC phase (destination became
    /// unreachable); drained right after the phase.
    rc_doomed: Vec<(PacketId, bool)>,
}

impl<E: ErrorControl> RefNetwork<E> {
    /// Builds a reference network from `config` with the given
    /// error-control layer. `seed` determinizes packet payloads exactly
    /// as in the optimized engine.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NocConfig::validate`].
    pub fn new(config: NocConfig, protocol: E, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let mesh = config.mesh;
        let n = mesh.num_nodes();
        Self {
            config,
            mesh,
            protocol,
            routers: mesh.nodes().map(|id| RefRouter::new(id, &config)).collect(),
            crc: Crc32::new(),
            cycle: 0,
            wheel: Wheel::new(),
            source_queues: vec![VecDeque::new(); n],
            inject_progress: vec![None; n],
            next_inject_vc: vec![0; n],
            pending_packets: HashMap::new(),
            reassembly: HashMap::new(),
            next_packet_id: 0,
            payload_seed: seed,
            stats: NetworkStats::default(),
            epoch: vec![RouterEpochStats::default(); n],
            counters: vec![EventCounters::default(); n],
            faults: None,
            rc_doomed: Vec::new(),
        }
    }

    /// Installs a permanent hard-fault schedule. Mirrors the optimized
    /// engine exactly: events are sorted by cycle and each batch takes
    /// effect at the start of its cycle's `step`, before event
    /// processing. An empty schedule leaves the zero-fault path.
    ///
    /// # Panics
    ///
    /// Panics if an event names a node outside the mesh or a link that
    /// does not exist.
    pub fn set_hard_faults(&mut self, mut events: Vec<HardFaultEvent>) {
        for ev in &events {
            match ev.kind {
                HardFaultKind::Router { node } => {
                    assert!(
                        node.index() < self.mesh.num_nodes(),
                        "fault node outside mesh"
                    );
                }
                HardFaultKind::Link { node, dir } => {
                    assert!(
                        node.index() < self.mesh.num_nodes(),
                        "fault node outside mesh"
                    );
                    assert!(
                        self.mesh.neighbor(node, dir).is_some(),
                        "hard fault on a nonexistent link {node}:{dir}"
                    );
                }
            }
        }
        if events.is_empty() {
            self.faults = None;
            return;
        }
        events.sort_by_key(|e| e.cycle);
        self.faults = Some(Box::new(RefFaultState::new(events, self.mesh.num_nodes())));
    }

    /// The network topology.
    pub fn mesh(&self) -> Topo {
        self.mesh
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-router statistics for the current control epoch.
    pub fn epoch_stats(&self) -> &[RouterEpochStats] {
        &self.epoch
    }

    /// Resets per-router epoch statistics.
    pub fn reset_epoch_stats(&mut self) {
        for e in &mut self.epoch {
            e.reset();
        }
    }

    /// Clears cumulative statistics and energy counters. In-flight
    /// traffic and learned state are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
        for c in &mut self.counters {
            c.reset();
        }
        // `unreachable_pairs` is a gauge, not an accumulator: re-seed it
        // from the live fault state so measurement-phase reports still
        // describe the surviving topology.
        if let Some(fs) = &self.faults {
            if let Some(fr) = &fs.routes {
                self.stats.unreachable_pairs = fr.unreachable_pairs();
            }
        }
    }

    /// Cumulative per-router energy event counters.
    pub fn counters(&self) -> &[EventCounters] {
        &self.counters
    }

    /// Immutable access to the error-control layer.
    pub fn protocol(&self) -> &E {
        &self.protocol
    }

    /// Mutable access to the error-control layer.
    pub fn protocol_mut(&mut self) -> &mut E {
        &mut self.protocol
    }

    /// Offers a data packet from `src` to `dst`, returning its id.
    ///
    /// Once hard faults are active, an offer between endpoints with no
    /// live route is *refused*: it consumes an id (keeping id streams
    /// aligned with the optimized engine) but injects nothing, counted
    /// in `packets_refused_unreachable`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is outside the mesh.
    pub fn offer(&mut self, src: NodeId, dst: NodeId) -> PacketId {
        assert!(src != dst, "packet source and destination must differ");
        assert!(
            src.index() < self.mesh.num_nodes() && dst.index() < self.mesh.num_nodes(),
            "node outside mesh"
        );
        if let Some(fs) = &self.faults {
            if let Some(fr) = &fs.routes {
                if !fr.reachable(src, dst) {
                    let id = PacketId(self.next_packet_id);
                    self.next_packet_id += 1;
                    self.stats.packets_refused_unreachable += 1;
                    return id;
                }
            }
        }
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src,
            dst,
            num_flits: self.config.flits_per_packet,
            class: PacketClass::Data,
            injected_at: self.cycle,
            payload_seed: splitmix64(self.payload_seed ^ id.0),
        };
        self.source_queues[src.index()].push_back((packet, 0));
        self.pending_packets.insert(id, (packet, 0));
        self.stats.packets_injected += 1;
        id
    }

    /// Offers a retransmit-request control packet (destination → source).
    fn offer_control(&mut self, from: NodeId, to: NodeId, of: PacketId) {
        if let Some(fs) = &self.faults {
            if let Some(fr) = &fs.routes {
                if !fr.reachable(from, to) {
                    // The source can no longer be reached; the request
                    // (and with it the retransmission) is abandoned.
                    return;
                }
            }
        }
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src: from,
            dst: to,
            num_flits: 1,
            class: PacketClass::RetransmitRequest { of },
            injected_at: self.cycle,
            payload_seed: splitmix64(self.payload_seed ^ id.0),
        };
        self.source_queues[from.index()].push_back((packet, 0));
        self.stats.control_packets += 1;
    }

    /// Advances the simulation by one clock cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        if let Some(fs) = &self.faults {
            if fs
                .events
                .get(fs.next_event)
                .is_some_and(|e| e.cycle <= cycle)
            {
                self.apply_hard_fault_batch(cycle);
            }
        }
        self.process_events(cycle);
        self.inject_phase(cycle);
        self.sa_st_phase(cycle);
        self.va_phase();
        self.rc_phase(cycle);
        self.sample_phase();
        self.cycle += 1;
    }

    /// `true` when no packet or flit remains anywhere in the system.
    pub fn is_quiescent(&self) -> bool {
        self.wheel.is_empty()
            && self.source_queues.iter().all(VecDeque::is_empty)
            && self.inject_progress.iter().all(Option::is_none)
            && self.reassembly.is_empty()
            && self.routers.iter().all(|r| {
                r.inputs
                    .iter()
                    .all(|port| port.iter().all(|vc| vc.fifo.is_empty()))
                    && r.outputs.iter().all(|p| p.retx_pending.is_empty())
            })
    }

    // ----- phases ---------------------------------------------------------

    fn process_events(&mut self, cycle: u64) {
        for event in self.wheel.take(cycle) {
            match event {
                Event::Arrival {
                    link,
                    vc,
                    flit,
                    seq,
                    kind,
                    pre_sent,
                } => self.handle_arrival(cycle, link, vc, flit, seq, kind, pre_sent),
                Event::DirectDeliver {
                    node,
                    in_port,
                    vc,
                    flit,
                } => {
                    if self
                        .faults
                        .as_ref()
                        .is_some_and(|fs| fs.doomed.contains(&flit.packet))
                    {
                        // Evaporate (the hop already ACKed at accept
                        // time); return the buffer credit if the
                        // upstream link still lives.
                        if in_port != Direction::Local
                            && !self
                                .faults
                                .as_ref()
                                .is_some_and(|fs| fs.link_dead[node.index()][in_port.index()])
                        {
                            let up = self
                                .mesh
                                .neighbor(node, in_port)
                                .expect("flit arrived from a neighbor");
                            self.wheel.push(
                                cycle,
                                cycle + 1,
                                Event::Credit {
                                    node: up,
                                    port: in_port.opposite(),
                                    vc,
                                },
                            );
                        }
                    } else {
                        self.accept_flit(node, in_port, vc, flit, cycle);
                    }
                }
                Event::Eject { node, flit } => self.handle_eject(cycle, node, flit),
                Event::Credit { node, port, vc } => {
                    let out = &mut self.routers[node.index()].outputs[port.index()];
                    let credit = &mut out.vcs[vc as usize].credits;
                    *credit = credit.saturating_add(1);
                    debug_assert!(
                        port == Direction::Local || *credit <= self.config.vc_depth,
                        "credit overflow on {node}:{port}"
                    );
                }
                Event::AckSignal {
                    node,
                    port,
                    seq,
                    kind,
                } => {
                    let out = &mut self.routers[node.index()].outputs[port.index()];
                    let (_, copy) = out.retx_buffer.acknowledge(seq, kind);
                    if let Some((flit, out_vc)) = copy {
                        out.retx_pending
                            .push_back(PendingRetransmit { flit, out_vc, seq });
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_arrival(
        &mut self,
        cycle: u64,
        link: LinkId,
        vc: u8,
        flit: Flit,
        seq: Option<SequenceNumber>,
        kind: TransferKind,
        pre_sent: bool,
    ) {
        let dst = self
            .mesh
            .neighbor(link.src, link.dir)
            .expect("arrival beyond mesh edge");
        let di = dst.index();
        let si = link.src.index();
        let in_port = link.dir.opposite();
        let ack_at = cycle + self.config.ack_latency as u64;

        // Hard-fault evaporation: flits of a doomed packet drain out at
        // arrival — the link-level contract (ACK + credit) completes so
        // the sender's ARQ window and credit pool recover, but the flit
        // goes no further. Arrivals only happen on live links: dead
        // links had their in-flight events swept at fault application.
        if self
            .faults
            .as_ref()
            .is_some_and(|fs| fs.doomed.contains(&flit.packet))
        {
            if kind == TransferKind::HopRetransmit && seq.is_some() {
                let ivc = &mut self.routers[di].inputs[in_port.index()][vc as usize];
                if ivc.awaiting_retx == seq {
                    ivc.awaiting_retx = None;
                }
            }
            if let Some(seq) = seq {
                self.counters[di].ack_signals += 1;
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::AckSignal {
                        node: link.src,
                        port: link.dir,
                        seq,
                        kind: AckKind::Ack,
                    },
                );
            }
            self.wheel.push(
                cycle,
                cycle + 1,
                Event::Credit {
                    node: link.src,
                    port: link.dir,
                    vc,
                },
            );
            return;
        }

        // Go-back-N gate: while a rejected flit awaits retransmission on
        // this VC, auto-reject every non-matching arrival that carries a
        // sequence number (order preservation).
        let gate = self.routers[di].inputs[in_port.index()][vc as usize].awaiting_retx;
        if let Some(gate_seq) = gate {
            let matches = kind == TransferKind::HopRetransmit && seq == Some(gate_seq);
            if !matches {
                if let Some(seq) = seq {
                    self.stats.hop_nacks += 1;
                    self.epoch[di].nacks_out += 1;
                    self.epoch[si].nacks_in += 1;
                    self.counters[di].ack_signals += 1;
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::AckSignal {
                            node: link.src,
                            port: link.dir,
                            seq,
                            kind: AckKind::Nack,
                        },
                    );
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::Credit {
                            node: link.src,
                            port: link.dir,
                            vc,
                        },
                    );
                    // Keep the sender quiet until it processes the NACK.
                    let out = &mut self.routers[si].outputs[link.dir.index()];
                    out.next_free = out.next_free.max(ack_at);
                    return;
                }
                // A sequence-less arrival under a gate can only happen
                // across an ECC-off mode switch. It cannot be NACKed (the
                // sender holds no copy), so stall it on the wire until the
                // awaited retransmission lands.
                self.wheel.push(
                    cycle,
                    cycle + 1,
                    Event::Arrival {
                        link,
                        vc,
                        flit,
                        seq,
                        kind,
                        pre_sent: false,
                    },
                );
                return;
            }
        }

        let mut working = flit;
        let protected = seq.is_some();
        let outcome = self.protocol.hop_transfer(
            link,
            &mut working,
            cycle,
            kind,
            protected,
            &mut self.counters[di],
        );
        match outcome {
            HopOutcome::Delivered | HopOutcome::DeliveredCorrected => {
                if outcome == HopOutcome::DeliveredCorrected {
                    self.stats.ecc_corrections += 1;
                }
                if kind == TransferKind::HopRetransmit {
                    self.routers[di].inputs[in_port.index()][vc as usize].awaiting_retx = None;
                }
                self.accept_flit(dst, in_port, vc, working, cycle);
                if let Some(seq) = seq {
                    self.counters[di].ack_signals += 1;
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::AckSignal {
                            node: link.src,
                            port: link.dir,
                            seq,
                            kind: AckKind::Ack,
                        },
                    );
                }
            }
            HopOutcome::Reject => {
                debug_assert!(seq.is_some(), "reject on a link without ARQ");
                // Operation mode 2: consult the proactive duplicate before
                // falling back to a NACK round trip.
                if kind == TransferKind::Original && pre_sent {
                    let mut copy = flit;
                    let o2 = self.protocol.hop_transfer(
                        link,
                        &mut copy,
                        cycle,
                        TransferKind::PreRetransmitCopy,
                        protected,
                        &mut self.counters[di],
                    );
                    if o2 != HopOutcome::Reject {
                        if o2 == HopOutcome::DeliveredCorrected {
                            self.stats.ecc_corrections += 1;
                        }
                        self.stats.pre_retransmit_hits += 1;
                        self.wheel.push(
                            cycle,
                            cycle + 1,
                            Event::DirectDeliver {
                                node: dst,
                                in_port,
                                vc,
                                flit: copy,
                            },
                        );
                        if let Some(seq) = seq {
                            self.counters[di].ack_signals += 1;
                            self.wheel.push(
                                cycle,
                                ack_at + 1,
                                Event::AckSignal {
                                    node: link.src,
                                    port: link.dir,
                                    seq,
                                    kind: AckKind::Ack,
                                },
                            );
                        }
                        return;
                    }
                }
                let seq = seq.expect("reject requires hop ARQ");
                self.routers[di].inputs[in_port.index()][vc as usize].awaiting_retx = Some(seq);
                self.stats.hop_nacks += 1;
                self.epoch[di].nacks_out += 1;
                self.epoch[si].nacks_in += 1;
                self.counters[di].ack_signals += 1;
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::AckSignal {
                        node: link.src,
                        port: link.dir,
                        seq,
                        kind: AckKind::Nack,
                    },
                );
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::Credit {
                        node: link.src,
                        port: link.dir,
                        vc,
                    },
                );
                // Suspend the sender's port until the NACK is processed so
                // no younger flit enters the reorder window.
                let out = &mut self.routers[si].outputs[link.dir.index()];
                out.next_free = out.next_free.max(ack_at);
            }
        }
    }

    fn accept_flit(&mut self, node: NodeId, in_port: Direction, vc: u8, flit: Flit, cycle: u64) {
        let ni = node.index();
        self.counters[ni].buffer_writes += 1;
        self.epoch[ni].flits_in[in_port.index()] += 1;
        let fifo = &mut self.routers[ni].inputs[in_port.index()][vc as usize].fifo;
        debug_assert!(
            fifo.len() < self.config.vc_depth as usize,
            "input VC overflow at {node}:{in_port}:{vc}"
        );
        fifo.push_back(BufferedFlit {
            flit,
            arrived_at: cycle,
        });
    }

    fn handle_eject(&mut self, cycle: u64, node: NodeId, flit: Flit) {
        if self
            .faults
            .as_ref()
            .is_some_and(|fs| fs.doomed.contains(&flit.packet))
        {
            return;
        }
        self.counters[node.index()].crc_checks += 1;
        let expected = if flit.class.is_control() {
            1
        } else {
            self.config.flits_per_packet
        } as usize;
        let key = (flit.packet, flit.attempt);
        let entry = self.reassembly.entry(key).or_default();
        entry.push(flit);
        if entry.len() == expected {
            let flits = self.reassembly.remove(&key).expect("entry just filled");
            self.finish_packet(cycle, node, flits);
        }
    }

    fn finish_packet(&mut self, cycle: u64, node: NodeId, flits: Vec<Flit>) {
        let head = flits[0];
        match head.class {
            PacketClass::RetransmitRequest { of } => {
                // The request reached the original source: re-queue the
                // packet. Stale requests (packet already delivered) are
                // ignored, as real hardware would.
                if let Some((packet, attempts)) = self.pending_packets.get_mut(&of) {
                    *attempts = attempts.saturating_add(1);
                    let resend = (*packet, *attempts);
                    self.source_queues[node.index()].push_front(resend);
                    self.stats.packet_retransmissions += 1;
                }
            }
            PacketClass::Data => {
                let outcome =
                    self.protocol
                        .eject_check(&flits, cycle, &mut self.counters[node.index()]);
                match outcome {
                    EjectOutcome::Accept => {
                        self.stats.packets_delivered += 1;
                        self.stats.flits_delivered += flits.len() as u64;
                        self.epoch[node.index()].core_activity_flits += flits.len() as u64;
                        let latency = cycle.saturating_sub(head.injected_at);
                        self.stats.latency.record(latency);
                        self.stats.last_delivery_cycle = cycle;
                        if let Some((packet, _)) = self.pending_packets.remove(&head.packet) {
                            if flits
                                .iter()
                                .any(|f| f.payload != packet.payload_for(f.index))
                            {
                                self.stats.silent_corruptions += 1;
                            }
                        }
                        // Attribute the latency sample along the route
                        // the packet actually took: X-Y while the
                        // topology is intact, the fault-adaptive table
                        // once faults are active (the walk stops early
                        // if the surviving route dead-ends).
                        let mut r = head.src;
                        loop {
                            let e = &mut self.epoch[r.index()];
                            e.latency_sum += latency;
                            e.latency_count += 1;
                            if r == head.dst {
                                break;
                            }
                            let dir = match self.faults.as_ref().and_then(|f| f.routes.as_ref()) {
                                Some(fr) => match fr.next_hop(r, head.dst) {
                                    Some(d) if d != Direction::Local => d,
                                    _ => break,
                                },
                                None => self.mesh.min_route(r, head.dst).0,
                            };
                            r = self.mesh.neighbor(r, dir).expect("route stays in mesh");
                        }
                    }
                    EjectOutcome::RequestRetransmit => {
                        self.stats.packets_failed_crc += 1;
                        self.offer_control(node, head.src, head.packet);
                    }
                }
            }
        }
    }

    fn inject_phase(&mut self, cycle: u64) {
        let local = Direction::Local.index();
        let vdepth = self.config.vc_depth as usize;
        let vcs = self.config.vcs_per_port;
        for ni in 0..self.routers.len() {
            if self.inject_progress[ni].is_none() {
                if let Some((packet, attempt)) = self.source_queues[ni].pop_front() {
                    // Rotate the starting VC; prefer one with space now.
                    let start = self.next_inject_vc[ni];
                    let mut vc = start;
                    for off in 0..vcs {
                        let cand = (start + off) % vcs;
                        if self.routers[ni].inputs[local][cand as usize].fifo.len() < vdepth {
                            vc = cand;
                            break;
                        }
                    }
                    self.next_inject_vc[ni] = (vc + 1) % vcs;
                    self.inject_progress[ni] = Some(InjectProgress {
                        packet,
                        attempt,
                        next_flit: 0,
                        vc,
                    });
                }
            }
            let Some(prog) = &mut self.inject_progress[ni] else {
                continue;
            };
            let fifo = &mut self.routers[ni].inputs[local][prog.vc as usize].fifo;
            if fifo.len() >= vdepth {
                continue; // local port back-pressured this cycle
            }
            let flit = prog
                .packet
                .make_flit(prog.next_flit, prog.attempt, &self.crc);
            fifo.push_back(BufferedFlit {
                flit,
                arrived_at: cycle,
            });
            self.counters[ni].crc_encodes += 1;
            self.counters[ni].buffer_writes += 1;
            self.epoch[ni].flits_in[local] += 1;
            if prog.attempt == 0 {
                self.epoch[ni].core_activity_flits += 1;
            }
            prog.next_flit += 1;
            if prog.next_flit == prog.packet.num_flits {
                self.inject_progress[ni] = None;
            }
        }
    }

    fn sa_st_phase(&mut self, cycle: u64) {
        let Self {
            routers,
            protocol,
            counters,
            epoch,
            stats,
            wheel,
            config,
            mesh,
            ..
        } = self;
        let link_latency = config.link_latency as u64;
        let v = config.vcs_per_port as usize;

        for router in routers.iter_mut() {
            let rid = router.id;
            let ri = rid.index();
            let np = router.inputs.len();
            let mut port_used = [false; MAX_PORTS];

            // Phase A: priority resends of NACKed flits. A port with a
            // pending retransmission is dedicated to it (order safety).
            for (out_p, used) in port_used.iter_mut().enumerate().take(np) {
                let dir = Direction::from_index(out_p);
                if dir == Direction::Local {
                    continue;
                }
                if cycle < router.outputs[out_p].next_free {
                    *used = true;
                    continue;
                }
                if router.outputs[out_p].retx_pending.is_empty() {
                    continue;
                }
                *used = true;
                let can_send = {
                    let pr = router.outputs[out_p]
                        .retx_pending
                        .front()
                        .expect("non-empty");
                    router.outputs[out_p].vcs[pr.out_vc as usize].credits > 0
                };
                if !can_send {
                    continue;
                }
                let pr = router.outputs[out_p]
                    .retx_pending
                    .pop_front()
                    .expect("non-empty");
                router.outputs[out_p].vcs[pr.out_vc as usize].credits -= 1;
                let link = LinkId { src: rid, dir };
                let delay = protocol.tx_delay(link) as u64;
                let pipeline = protocol.pipeline_latency(link) as u64;
                let pre = protocol.pre_retransmit(link);
                counters[ri].retransmit_sends += 1;
                counters[ri].link_traversals[out_p] += 1 + u64::from(pre);
                epoch[ri].flits_out[out_p] += 1;
                stats.flit_retransmissions += 1;
                wheel.push(
                    cycle,
                    cycle + link_latency + delay + pipeline,
                    Event::Arrival {
                        link,
                        vc: pr.out_vc,
                        flit: pr.flit,
                        seq: Some(pr.seq),
                        kind: TransferKind::HopRetransmit,
                        pre_sent: pre,
                    },
                );
                router.outputs[out_p].next_free = cycle + 1 + delay + u64::from(pre);
            }

            // Phase B: input-first selection.
            let mut selected: [Option<(usize, usize, u8)>; MAX_PORTS] = [None; MAX_PORTS];
            for (in_p, sel) in selected.iter_mut().enumerate().take(np) {
                let mut requests = vec![false; v];
                for (in_v, ivc) in router.inputs[in_p].iter().enumerate() {
                    let VcState::Active {
                        out_port, out_vc, ..
                    } = ivc.state
                    else {
                        continue;
                    };
                    let Some(front) = ivc.fifo.front() else {
                        continue;
                    };
                    if front.arrived_at >= cycle {
                        continue;
                    }
                    let op = out_port.index();
                    if port_used[op] || cycle < router.outputs[op].next_free {
                        continue;
                    }
                    if out_port != Direction::Local {
                        if router.outputs[op].vcs[out_vc as usize].credits == 0 {
                            continue;
                        }
                        let link = LinkId {
                            src: rid,
                            dir: out_port,
                        };
                        if protocol.hop_arq(link) && router.outputs[op].retx_buffer.is_full() {
                            continue;
                        }
                    }
                    requests[in_v] = true;
                }
                if let Some(win) = router.sa_input_arbiters[in_p].grant(&requests) {
                    let VcState::Active {
                        out_port, out_vc, ..
                    } = router.inputs[in_p][win].state
                    else {
                        unreachable!("selected VC must be active");
                    };
                    *sel = Some((win, out_port.index(), out_vc));
                }
            }

            // Phase C: output arbitration + switch traversal.
            for (out_p, &used) in port_used.iter().enumerate().take(np) {
                if used || cycle < router.outputs[out_p].next_free {
                    continue;
                }
                let mut requests = [false; MAX_PORTS];
                let mut any = false;
                for (in_p, sel) in selected.iter().enumerate().take(np) {
                    if let Some((_, op, _)) = sel {
                        if *op == out_p {
                            requests[in_p] = true;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue;
                }
                let in_p = router.sa_output_arbiters[out_p]
                    .grant(&requests[..np])
                    .expect("a request was asserted");
                let (in_v, _, out_vc) = selected[in_p].expect("request implies selection");

                counters[ri].sa_grants += 1;
                let bf = router.inputs[in_p][in_v]
                    .fifo
                    .pop_front()
                    .expect("granted VC holds a flit");
                counters[ri].buffer_reads += 1;
                counters[ri].crossbar_traversals += 1;
                epoch[ri].flits_out[out_p] += 1;
                let is_tail = bf.flit.kind.is_tail();
                if is_tail {
                    router.inputs[in_p][in_v].state = VcState::Idle;
                }

                // Return the freed buffer slot to the upstream router.
                let in_dir = Direction::from_index(in_p);
                if in_dir != Direction::Local {
                    let upstream = mesh
                        .neighbor(rid, in_dir)
                        .expect("flit arrived from a neighbor");
                    wheel.push(
                        cycle,
                        cycle + 1,
                        Event::Credit {
                            node: upstream,
                            port: in_dir.opposite(),
                            vc: in_v as u8,
                        },
                    );
                }

                let out_dir = Direction::from_index(out_p);
                if is_tail {
                    router.outputs[out_p].vcs[out_vc as usize].allocated = false;
                }
                if out_dir == Direction::Local {
                    wheel.push(
                        cycle,
                        cycle + 1,
                        Event::Eject {
                            node: rid,
                            flit: bf.flit,
                        },
                    );
                    router.outputs[out_p].next_free = cycle + 1;
                } else {
                    router.outputs[out_p].vcs[out_vc as usize].credits -= 1;
                    let link = LinkId {
                        src: rid,
                        dir: out_dir,
                    };
                    let delay = protocol.tx_delay(link) as u64;
                    let pipeline = protocol.pipeline_latency(link) as u64;
                    let pre = protocol.pre_retransmit(link);
                    counters[ri].link_traversals[out_p] += 1 + u64::from(pre);
                    let seq = if protocol.hop_arq(link) {
                        counters[ri].retransmit_buffer_writes += 1;
                        Some(
                            router.outputs[out_p]
                                .retx_buffer
                                .push((bf.flit, out_vc), cycle)
                                .expect("fullness checked during selection"),
                        )
                    } else {
                        None
                    };
                    wheel.push(
                        cycle,
                        cycle + link_latency + delay + pipeline,
                        Event::Arrival {
                            link,
                            vc: out_vc,
                            flit: bf.flit,
                            seq,
                            kind: TransferKind::Original,
                            pre_sent: pre,
                        },
                    );
                    router.outputs[out_p].next_free = cycle + 1 + delay + u64::from(pre);
                }
            }
        }
    }

    fn va_phase(&mut self) {
        for (ri, router) in self.routers.iter_mut().enumerate() {
            let grants = router.va_stage();
            self.counters[ri].va_allocations += grants;
        }
    }

    fn rc_phase(&mut self, cycle: u64) {
        let Self {
            routers,
            mesh,
            faults,
            rc_doomed,
            ..
        } = self;
        let fault_routes = faults.as_deref().and_then(|f| f.routes.as_ref());
        for router in routers.iter_mut() {
            router.rc_stage(cycle, *mesh, fault_routes, rc_doomed);
        }
        if !self.rc_doomed.is_empty() {
            self.finish_rc_dooms(cycle);
        }
    }

    fn sample_phase(&mut self) {
        for (ri, router) in self.routers.iter().enumerate() {
            let e = &mut self.epoch[ri];
            e.cycles += 1;
            e.occupied_vc_cycles += router.occupied_input_vcs() as u64;
        }
    }

    // ----- hard faults ----------------------------------------------------

    /// Applies every hard-fault event due at `cycle`: marks the dead
    /// elements, recomputes the fault-adaptive route table, evacuates
    /// state resident on dead elements, and purges the packets the
    /// batch killed. Runs at the top of `step` — before event
    /// processing — so both simulation engines observe the failure at
    /// the same phase-order point.
    fn apply_hard_fault_batch(&mut self, cycle: u64) {
        let mut fs = self
            .faults
            .take()
            .expect("caller checked a schedule exists");
        let mut lost = 0u64;

        // 1. Consume the due events.
        let mut applied = 0u64;
        while let Some(ev) = fs.events.get(fs.next_event) {
            if ev.cycle > cycle {
                break;
            }
            match ev.kind {
                HardFaultKind::Router { node } => {
                    fs.node_dead[node.index()] = true;
                    for &dir in self.mesh.compass() {
                        if self.mesh.neighbor(node, dir).is_some() {
                            fs.kill_link(self.mesh, node, dir);
                        }
                    }
                }
                HardFaultKind::Link { node, dir } => fs.kill_link(self.mesh, node, dir),
            }
            fs.next_event += 1;
            applied += 1;
        }

        // 2. Recompute the routing tree on the surviving topology.
        let node_alive: Vec<bool> = fs.node_dead.iter().map(|&d| !d).collect();
        let routes = FaultRoutes::compute(self.mesh, &node_alive, |n, d| {
            !fs.link_dead[n.index()][d.index()]
        });
        let unreachable = routes.unreachable_pairs();
        fs.routes = Some(routes);

        // 3. Wheel sweep: in-flight events on dead elements die in
        // place. Killing an arrival dooms its packet — the wormhole has
        // been severed.
        for slot in &mut self.wheel.slots {
            slot.retain(|ev| {
                let dead_packet = match ev {
                    Event::Arrival { link, flit, .. } => {
                        if fs.link_dead[link.src.index()][link.dir.index()] {
                            Some((flit.packet, !flit.class.is_control()))
                        } else {
                            None
                        }
                    }
                    Event::DirectDeliver { node, flit, .. } | Event::Eject { node, flit } => {
                        if fs.node_dead[node.index()] {
                            Some((flit.packet, !flit.class.is_control()))
                        } else {
                            None
                        }
                    }
                    Event::Credit { node, port, .. } | Event::AckSignal { node, port, .. } => {
                        return !(fs.node_dead[node.index()]
                            || fs.link_dead[node.index()][port.index()]);
                    }
                };
                match dead_packet {
                    Some((id, is_data)) => {
                        if fs.doom(id, is_data) {
                            lost += 1;
                        }
                        false
                    }
                    None => true,
                }
            });
        }

        // 4. Evacuate dead routers and dead-link ports, and divert live
        // VCs that were routed toward a link that just died.
        let mut dealloc: Vec<(usize, usize)> = Vec::new();
        for router in self.routers.iter_mut() {
            let ni = router.id.index();
            if fs.node_dead[ni] {
                // Dead router: everything it holds is lost, and its
                // core can no longer source traffic.
                for port in router.inputs.iter_mut() {
                    for ivc in port.iter_mut() {
                        for bf in ivc.fifo.drain(..) {
                            if fs.doom(bf.flit.packet, !bf.flit.class.is_control()) {
                                lost += 1;
                            }
                        }
                        match ivc.state {
                            VcState::NeedsVa { packet, .. } | VcState::Active { packet, .. } => {
                                // Flits of this packet already left
                                // through the crossbar; it can never
                                // complete.
                                if fs.doom(packet, true) {
                                    lost += 1;
                                }
                            }
                            VcState::Idle => {}
                        }
                        ivc.state = VcState::Idle;
                        ivc.awaiting_retx = None;
                    }
                }
                for out in router.outputs.iter_mut() {
                    for pr in out.retx_pending.drain(..) {
                        if fs.doom(pr.flit.packet, !pr.flit.class.is_control()) {
                            lost += 1;
                        }
                    }
                    out.retx_buffer.clear();
                    for ovc in out.vcs.iter_mut() {
                        ovc.allocated = false;
                    }
                }
                for (p, _) in self.source_queues[ni].drain(..) {
                    if fs.doom(p.id, !p.class.is_control()) {
                        lost += 1;
                    }
                }
                if let Some(prog) = self.inject_progress[ni].take() {
                    if fs.doom(prog.packet.id, !prog.packet.class.is_control()) {
                        lost += 1;
                    }
                }
                continue;
            }

            // Live router: flush ports attached to dead links.
            for &dir in self.mesh.compass() {
                let p = dir.index();
                if !fs.link_dead[ni][p] {
                    continue;
                }
                for ivc in router.inputs[p].iter_mut() {
                    for bf in ivc.fifo.drain(..) {
                        if fs.doom(bf.flit.packet, !bf.flit.class.is_control()) {
                            lost += 1;
                        }
                    }
                    match ivc.state {
                        VcState::NeedsVa { packet, .. } | VcState::Active { packet, .. } => {
                            // The rest of the packet is stranded
                            // upstream of the dead link.
                            if fs.doom(packet, true) {
                                lost += 1;
                            }
                        }
                        VcState::Idle => {}
                    }
                    if let VcState::Active {
                        out_port, out_vc, ..
                    } = ivc.state
                    {
                        dealloc.push((out_port.index(), out_vc as usize));
                    }
                    ivc.state = VcState::Idle;
                    ivc.awaiting_retx = None;
                }
                for pr in router.outputs[p].retx_pending.drain(..) {
                    if fs.doom(pr.flit.packet, !pr.flit.class.is_control()) {
                        lost += 1;
                    }
                }
                router.outputs[p].retx_buffer.clear();
            }

            // Self-healing divert: VCs routed toward a dead output
            // link. A packet that has not yet sent a flit through
            // the crossbar re-enters RC; a severed wormhole is lost.
            for port in router.inputs.iter_mut() {
                for ivc in port.iter_mut() {
                    match ivc.state {
                        VcState::NeedsVa { out_port, .. } if fs.link_dead[ni][out_port.index()] => {
                            ivc.state = VcState::Idle;
                        }
                        VcState::Active {
                            out_port,
                            out_vc,
                            packet,
                        } if fs.link_dead[ni][out_port.index()] => {
                            dealloc.push((out_port.index(), out_vc as usize));
                            let head_waiting =
                                ivc.fifo.front().is_some_and(|bf| bf.flit.kind.is_head());
                            if !head_waiting && fs.doom(packet, true) {
                                lost += 1;
                            }
                            ivc.state = VcState::Idle;
                        }
                        _ => {}
                    }
                }
            }
            for &(op, ov) in &dealloc {
                router.outputs[op].vcs[ov].allocated = false;
            }
            dealloc.clear();
        }

        // 5. Packets whose source or destination core died are lost, as
        // are reassembly attempts collecting at a dead destination.
        let stale: Vec<PacketId> = self
            .pending_packets
            .values()
            .filter(|(p, _)| fs.node_dead[p.src.index()] || fs.node_dead[p.dst.index()])
            .map(|(p, _)| p.id)
            .collect();
        for id in stale {
            if fs.doom(id, true) {
                lost += 1;
            }
        }
        let stale: Vec<(PacketId, bool)> = self
            .reassembly
            .values()
            .filter_map(|flits| {
                let f = flits.first()?;
                fs.node_dead[f.dst.index()].then_some((f.packet, !f.class.is_control()))
            })
            .collect();
        for (id, is_data) in stale {
            if fs.doom(id, is_data) {
                lost += 1;
            }
        }

        // 6. Purge everything the batch doomed, then publish counters.
        self.purge_doomed_resident(&fs, cycle);
        self.stats.hard_fault_events += applied;
        self.stats.reroute_events += 1;
        self.stats.unreachable_pairs = unreachable;
        self.stats.packets_lost_hard_fault += lost;
        self.faults = Some(fs);
    }

    /// Called after the RC phase when head flits found their
    /// destination unreachable on the surviving topology: dooms those
    /// packets and purges their resident flits so the network stays
    /// drainable.
    fn finish_rc_dooms(&mut self, cycle: u64) {
        let mut fs = self.faults.take().expect("RC dooms require fault state");
        let mut dooms = std::mem::take(&mut self.rc_doomed);
        let mut lost = 0u64;
        for &(id, is_data) in &dooms {
            if fs.doom(id, is_data) {
                lost += 1;
            }
        }
        dooms.clear();
        self.rc_doomed = dooms;
        self.purge_doomed_resident(&fs, cycle);
        self.stats.packets_lost_hard_fault += lost;
        self.faults = Some(fs);
    }

    /// Removes every resident trace of doomed packets — buffered flits
    /// (returning credits on live links), VC ownership, injection
    /// state, source-queue entries, and the pending/reassembly windows.
    /// In-flight wheel events self-clean on arrival instead. The fault
    /// state is passed detached because callers hold it taken out of
    /// `self.faults`.
    fn purge_doomed_resident(&mut self, fs: &RefFaultState, now: u64) {
        let Self {
            routers,
            wheel,
            mesh,
            source_queues,
            inject_progress,
            pending_packets,
            reassembly,
            ..
        } = self;
        let mut dealloc: Vec<(usize, usize)> = Vec::new();
        for router in routers.iter_mut() {
            let rid = router.id;
            let ni = rid.index();
            for in_p in 0..router.inputs.len() {
                let in_dir = Direction::from_index(in_p);
                let upstream = if in_dir == Direction::Local {
                    None
                } else {
                    mesh.neighbor(rid, in_dir)
                };
                let credits_live = !fs.node_dead[ni]
                    && !fs.link_dead[ni][in_p]
                    && upstream.is_some_and(|up| !fs.node_dead[up.index()]);
                for (in_v, ivc) in router.inputs[in_p].iter_mut().enumerate() {
                    if !ivc.fifo.is_empty() {
                        ivc.fifo.retain(|bf| {
                            let keep = !fs.doomed.contains(&bf.flit.packet);
                            if !keep && credits_live {
                                wheel.push(
                                    now,
                                    now + 1,
                                    Event::Credit {
                                        node: upstream.expect("live link has a peer"),
                                        port: in_dir.opposite(),
                                        vc: in_v as u8,
                                    },
                                );
                            }
                            keep
                        });
                    }
                    match ivc.state {
                        VcState::NeedsVa { packet, .. } if fs.doomed.contains(&packet) => {
                            ivc.state = VcState::Idle;
                        }
                        VcState::Active {
                            out_port,
                            out_vc,
                            packet,
                        } if fs.doomed.contains(&packet) => {
                            dealloc.push((out_port.index(), out_vc as usize));
                            ivc.state = VcState::Idle;
                        }
                        _ => {}
                    }
                }
            }
            for &(op, ov) in &dealloc {
                router.outputs[op].vcs[ov].allocated = false;
            }
            dealloc.clear();
        }
        for (ni, prog) in inject_progress.iter_mut().enumerate() {
            if prog
                .as_ref()
                .is_some_and(|p| fs.doomed.contains(&p.packet.id))
            {
                *prog = None;
            }
            source_queues[ni].retain(|(p, _)| !fs.doomed.contains(&p.id));
        }
        pending_packets.retain(|id, _| !fs.doomed.contains(id));
        reassembly.retain(|(id, _), _| !fs.doomed.contains(id));
    }
}
