//! Reference CART trainer: an independent, naive implementation of the
//! decision-tree *training* algorithm, for differential testing against
//! the production `noc_rl::decision_tree::DecisionTree::fit`.
//!
//! The reference network model (`refnet`/`refproto`) re-implements the
//! data plane, but both backends share the controller layer — including
//! DT training — so the differential oracle alone never cross-checks
//! `fit`. This module closes that gap: a boxed-node recursive trainer
//! with per-node rescans (no shared prefix-sum state, no index
//! indirection, no reserved-slot vector) that must nevertheless produce
//! bit-identical predictions.
//!
//! # The floating-point contract
//!
//! Bit-identity over `f64` requires both trainers to *associate*
//! reductions identically; where the naive choice would differ, the
//! production association is part of the algorithm's contract and is
//! deliberately mirrored here:
//!
//! * node mean and variance accumulate in sample order, left to right;
//! * candidate values sort by `f64::total_cmp` with a stable sort, so
//!   ties keep sample order;
//! * left-side sums accumulate sequentially over the sorted prefix, and
//!   the right side is `total − left` (a subtraction, not a rescan —
//!   the one place the production prefix-sum layout shows through);
//! * split quality is `(ql − sl²/nl) + (qr − sr²/nr)`, thresholds are
//!   midpoints of adjacent distinct values, and the first strictly
//!   smaller SSE wins (feature-major, then split-position order).
//!
//! Everything else — the recursion shape, the node storage, the
//! partition mechanics — is implemented differently on purpose, which
//! is what gives the differential test its teeth.

use noc_rl::decision_tree::TreeParams;

/// A node of the reference tree: a plain boxed binary tree, unlike the
/// production flat `Vec<Node>` arena.
#[derive(Debug, Clone, PartialEq)]
pub enum RefNode {
    /// Mean of the samples that reached this node.
    Leaf(f64),
    /// A binary split on one feature.
    Split {
        /// Feature column index.
        feature: usize,
        /// Decision boundary; `x[feature] <= threshold` goes left.
        threshold: f64,
        /// Subtree for samples at or below the threshold.
        left: Box<RefNode>,
        /// Subtree for samples above the threshold.
        right: Box<RefNode>,
    },
}

/// A regression tree grown by the reference trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct RefTree {
    root: RefNode,
}

impl RefTree {
    /// Fits a reference tree to `(features, targets)`.
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched lengths, like the production
    /// trainer.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], params: TreeParams) -> Self {
        assert!(!features.is_empty(), "training set must be non-empty");
        assert_eq!(
            features.len(),
            targets.len(),
            "features/targets length mismatch"
        );
        let samples: Vec<(&[f64], f64)> = features
            .iter()
            .map(Vec::as_slice)
            .zip(targets.iter().copied())
            .collect();
        Self {
            root: grow(&samples, 0, &params),
        }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                RefNode::Leaf(value) => return *value,
                RefNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Total node count (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        fn walk(node: &RefNode) -> usize {
            match node {
                RefNode::Leaf(_) => 1,
                RefNode::Split { left, right, .. } => 1 + walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }
}

fn grow(samples: &[(&[f64], f64)], depth: usize, params: &TreeParams) -> RefNode {
    let mean = samples.iter().map(|&(_, y)| y).sum::<f64>() / samples.len() as f64;
    let variance = samples
        .iter()
        .map(|&(_, y)| (y - mean).powi(2))
        .sum::<f64>()
        / samples.len() as f64;
    if depth >= params.max_depth
        || samples.len() < params.min_samples_split
        || variance <= params.min_variance
    {
        return RefNode::Leaf(mean);
    }
    let Some((feature, threshold)) = best_split(samples) else {
        return RefNode::Leaf(mean);
    };
    let left: Vec<(&[f64], f64)> = samples
        .iter()
        .filter(|(x, _)| x[feature] <= threshold)
        .copied()
        .collect();
    let right: Vec<(&[f64], f64)> = samples
        .iter()
        .filter(|(x, _)| x[feature] > threshold)
        .copied()
        .collect();
    if left.is_empty() || right.is_empty() {
        return RefNode::Leaf(mean);
    }
    RefNode::Split {
        feature,
        threshold,
        left: Box::new(grow(&left, depth + 1, params)),
        right: Box::new(grow(&right, depth + 1, params)),
    }
}

/// Naive split search: for every feature and every valid boundary,
/// rescan the sorted prefix to accumulate the left-side sums (the
/// production code keeps prefix-sum arrays instead).
fn best_split(samples: &[(&[f64], f64)]) -> Option<(usize, f64)> {
    let dim = samples[0].0.len();
    let mut best: Option<(usize, f64, f64)> = None;
    for feature in 0..dim {
        let mut values: Vec<(f64, f64)> = samples.iter().map(|&(x, y)| (x[feature], y)).collect();
        values.sort_by(|a, b| a.0.total_cmp(&b.0));
        let n = values.len();
        // Whole-node totals, accumulated in sorted order (matches the
        // production prefix_sum[n]/prefix_sq[n]).
        let mut total_sum = 0.0;
        let mut total_sq = 0.0;
        for &(_, y) in &values {
            total_sum += y;
            total_sq += y * y;
        }
        for split in 1..n {
            if values[split - 1].0 == values[split].0 {
                continue;
            }
            // Rescan the prefix sequentially — same association as the
            // production prefix sums, recomputed from scratch.
            let mut sl = 0.0;
            let mut ql = 0.0;
            for &(_, y) in &values[..split] {
                sl += y;
                ql += y * y;
            }
            let (nl, nr) = (split as f64, (n - split) as f64);
            let (sr, qr) = (total_sum - sl, total_sq - ql);
            let sse = (ql - sl * sl / nl) + (qr - sr * sr / nr);
            let threshold = (values[split - 1].0 + values[split].0) / 2.0;
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((feature, threshold, sse));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_targets_collapse_to_one_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let tree = RefTree::fit(&xs, &vec![2.5; 20], TreeParams::default());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[7.0]), 2.5);
    }

    #[test]
    fn identical_feature_rows_cannot_split() {
        let xs = vec![vec![1.0, 2.0]; 16];
        let ys: Vec<f64> = (0..16).map(f64::from).collect();
        let tree = RefTree::fit(&xs, &ys, TreeParams::default());
        assert_eq!(tree.num_nodes(), 1, "no valid threshold exists");
    }

    #[test]
    fn learns_a_step() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..64).map(|i| if i < 32 { 0.0 } else { 1.0 }).collect();
        let tree = RefTree::fit(&xs, &ys, TreeParams::default());
        assert_eq!(tree.predict(&[3.0]), 0.0);
        assert_eq!(tree.predict(&[60.0]), 1.0);
    }
}
