//! The differential driver: run a case on two backends, diff the
//! reports, shrink failures to a minimal replayable case.

use crate::backend::ReferenceBackend;
use noc_sim::network::Network;
use rlnoc_core::backend::SimBackend;
use rlnoc_core::fuzzcase::{FieldDiff, FuzzCase};
use rlnoc_core::protocol::FaultTolerantProtocol;

/// Outcome of one differential case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case that was run.
    pub case: FuzzCase,
    /// Report fields that differ between the two backends (empty ⇒ the
    /// backends agree bit for bit).
    pub diffs: Vec<FieldDiff>,
}

impl CaseOutcome {
    /// `true` when the backends produced bit-identical reports.
    pub fn agrees(&self) -> bool {
        self.diffs.is_empty()
    }
}

/// Runs `case` through both backends and diffs the resulting reports.
pub fn run_case_with<A: SimBackend, B: SimBackend>(case: &FuzzCase) -> CaseOutcome {
    let a = case.experiment().run_with_backend::<A>();
    let b = case.experiment().run_with_backend::<B>();
    CaseOutcome {
        case: case.clone(),
        diffs: a.diff(&b),
    }
}

/// Runs `case` on the optimized kernel and the reference model.
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    run_case_with::<Network<FaultTolerantProtocol>, ReferenceBackend>(case)
}

/// Lane width for the `BatchSim` sample at fuzz-stream index `index`,
/// or `None` when the index runs the scalar differential only. Every
/// eighth case re-runs as a batched replicate group, cycling the widths
/// the lane-equivalence wall pins — this is the policy `verify_fuzz`
/// applies, factored out so a test can pin the coverage.
pub fn batch_sample_width(index: u64) -> Option<usize> {
    index
        .is_multiple_of(8)
        .then(|| [2, 4, 8][(index / 8) as usize % 3])
}

/// Runs `case` as the first lane of a `lanes`-wide batched replicate
/// group on the optimized kernel, diffing every lane against its own
/// serial run (replicate seeds derive from the case seed through
/// `rand::seed_stream`, like `Campaign::tasks`). Combined with
/// [`run_case`] — serial optimized vs reference — this closes the
/// triangle: batched == serial == reference.
pub fn run_case_batched(case: &FuzzCase, lanes: usize) -> CaseOutcome {
    let cases: Vec<FuzzCase> = (0..lanes as u64)
        .map(|i| {
            let mut lane = case.clone();
            if i > 0 {
                lane.seed = rand::seed_stream(case.seed, i);
            }
            lane
        })
        .collect();
    let serial: Vec<_> = cases.iter().map(|c| c.experiment().run()).collect();
    let batched = rlnoc_core::Experiment::run_batch(cases.iter().map(|c| c.experiment()).collect());
    CaseOutcome {
        case: case.clone(),
        diffs: serial
            .iter()
            .zip(&batched)
            .flat_map(|(s, b)| s.diff(b))
            .collect(),
    }
}

/// Greedily shrinks `case` while `diverges` keeps reproducing, returning
/// the smallest divergent case found. Bounded by `max_steps` shrink
/// attempts so pathological cases cannot stall a CI run.
pub fn shrink(case: &FuzzCase, max_steps: usize, diverges: impl Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut best = case.clone();
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in best.shrink_candidates() {
            steps += 1;
            if steps > max_steps {
                break 'outer;
            }
            if diverges(&candidate) {
                best = candidate;
                continue 'outer;
            }
        }
        break; // no candidate reproduces: local minimum
    }
    best
}

/// Runs a divergent case's shrink loop against the optimized/reference
/// pair and returns the minimal reproducing case.
pub fn shrink_divergence(case: &FuzzCase, max_steps: usize) -> FuzzCase {
    shrink(case, max_steps, |c| !run_case(c).agrees())
}
