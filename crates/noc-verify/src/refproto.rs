//! Reference fault-tolerant protocol.
//!
//! A re-implementation of `rlnoc_core::protocol::FaultTolerantProtocol`
//! that recomputes the link error probability from the timing model on
//! *every* hop (no epoch caches, no precomputed integer thresholds) and
//! runs the coding layers through the bitwise reference oracles
//! ([`Secded64::encode_reference`]/[`Secded64::decode_reference`] and
//! [`Crc32::checksum_reference`]) instead of the table-driven kernels.
//!
//! RNG discipline: [`FaultInjector::sample_flips`] consumes exactly the
//! same draws as the optimized threshold path by construction, so the
//! fault streams line up draw for draw and a divergence in any report
//! field is a real behavioral difference, not RNG skew.

use noc_coding::crc::Crc32;
use noc_coding::hamming::{DecodeOutcome, Secded64};
use noc_fault::injector::FaultInjector;
use noc_fault::timing::TimingErrorModel;
use noc_fault::variation::VariationMap;
use noc_sim::error_control::{EjectOutcome, ErrorControl, HopOutcome, TransferKind};
use noc_sim::flit::Flit;
use noc_sim::stats::EventCounters;
use noc_sim::topology::{LinkId, Topo};
use rlnoc_core::modes::OperationMode;

/// Serializes a flit payload little-endian and checks its CRC-32 with
/// the bit-at-a-time reference kernel — the oracle form of
/// [`Flit::crc_ok`].
fn crc_ok_reference(flit: &Flit) -> bool {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&flit.payload[0].to_le_bytes());
    bytes[8..].copy_from_slice(&flit.payload[1].to_le_bytes());
    Crc32::checksum_reference(&bytes) == flit.crc
}

/// The reference protocol: same observable behavior as the production
/// [`FaultTolerantProtocol`](rlnoc_core::protocol::FaultTolerantProtocol),
/// implemented the slow obvious way.
#[derive(Debug, Clone)]
pub struct RefProtocol {
    mesh: Topo,
    modes: Vec<OperationMode>,
    timing: TimingErrorModel,
    variation: VariationMap,
    injector: FaultInjector,
    temperatures: Vec<f64>,
    utilizations: Vec<f64>,
}

impl RefProtocol {
    /// Creates the protocol with every router in mode 0, 50 °C
    /// everywhere, and idle links — the production initial state.
    pub fn new(
        mesh: impl Into<Topo>,
        timing: TimingErrorModel,
        variation: VariationMap,
        seed: u64,
    ) -> Self {
        let mesh = mesh.into();
        let n = mesh.num_nodes();
        assert_eq!(
            variation.factors().len(),
            n,
            "variation map does not match mesh"
        );
        Self {
            mesh,
            modes: vec![OperationMode::Mode0; n],
            timing,
            variation,
            injector: FaultInjector::new(seed),
            temperatures: vec![50.0; n],
            utilizations: vec![0.0; n],
        }
    }

    /// The mesh this protocol serves.
    pub fn mesh(&self) -> Topo {
        self.mesh
    }

    /// Sets router `node`'s operation mode.
    pub fn set_mode(&mut self, node: usize, mode: OperationMode) {
        self.modes[node] = mode;
    }

    /// Sets every router to `mode`.
    pub fn set_all_modes(&mut self, mode: OperationMode) {
        self.modes.fill(mode);
    }

    /// Updates per-router temperatures (°C).
    pub fn set_temperatures(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temperatures.len(), "length mismatch");
        self.temperatures.copy_from_slice(temps);
    }

    /// Updates per-router mean output-link utilizations (flits/cycle).
    pub fn set_utilizations(&mut self, utils: &[f64]) {
        assert_eq!(utils.len(), self.utilizations.len(), "length mismatch");
        self.utilizations.copy_from_slice(utils);
    }

    /// Per-flit error probability on router `node`'s output links,
    /// recomputed from the model on every call.
    pub fn link_error_probability(&self, node: usize) -> f64 {
        self.timing.flit_error_probability(
            self.temperatures[node],
            self.utilizations[node],
            self.variation.factor(node),
            self.modes[node].relaxed_timing(),
        )
    }

    /// Mode-independent (raw) error probability for `node`.
    pub fn raw_error_probability(&self, node: usize) -> f64 {
        self.timing.flit_error_probability(
            self.temperatures[node],
            self.utilizations[node],
            self.variation.factor(node),
            false,
        )
    }

    /// Raw error probabilities for every router.
    pub fn raw_error_probabilities(&self) -> Vec<f64> {
        (0..self.mesh.num_nodes())
            .map(|n| self.raw_error_probability(n))
            .collect()
    }
}

impl ErrorControl for RefProtocol {
    fn hop_transfer(
        &mut self,
        link: LinkId,
        flit: &mut Flit,
        _cycle: u64,
        _kind: TransferKind,
        protected: bool,
        counters: &mut EventCounters,
    ) -> HopOutcome {
        let src = link.src.index();
        let p = self.link_error_probability(src);
        let flips = self.injector.sample_flips(&self.timing, p);

        // `protected` is the send-time ECC state — a flit launched before
        // a mode switch keeps the protection it was encoded with.
        if !protected {
            // Raw link: corruption rides through to the destination CRC.
            if flips > 0 {
                for bit in self.injector.pick_bits(flips, 128) {
                    flit.flip_payload_bit(bit);
                }
            }
            return HopOutcome::Delivered;
        }

        counters.ecc_encodes += 1;
        counters.ecc_decodes += 1;
        if flips == 0 {
            return HopOutcome::Delivered;
        }
        // Two Hamming(72,64) codewords protect the 128-bit payload; the
        // sampled flips land on codeword bits (data or check bits alike).
        let mut words = [
            Secded64::encode_reference(flit.payload[0]),
            Secded64::encode_reference(flit.payload[1]),
        ];
        for bit in self.injector.pick_bits(flips, 2 * Secded64::CODE_BITS) {
            let (w, b) = (
                (bit / Secded64::CODE_BITS) as usize,
                bit % Secded64::CODE_BITS,
            );
            words[w] = words[w].with_bit_flipped(b);
        }
        let mut corrected = false;
        let mut decoded = [0u64; 2];
        for (i, cw) in words.iter().enumerate() {
            match cw.decode_reference() {
                DecodeOutcome::Clean { data } => decoded[i] = data,
                DecodeOutcome::Corrected { data, .. } => {
                    decoded[i] = data;
                    corrected = true;
                }
                DecodeOutcome::DoubleError => return HopOutcome::Reject,
            }
        }
        // ≥3 flips in one codeword can mis-correct — the corruption is
        // carried forward honestly; the destination CRC is the backstop.
        flit.payload = decoded;
        if corrected {
            HopOutcome::DeliveredCorrected
        } else {
            HopOutcome::Delivered
        }
    }

    fn tx_delay(&self, link: LinkId) -> u32 {
        self.modes[link.src.index()].tx_delay()
    }

    fn pipeline_latency(&self, link: LinkId) -> u32 {
        self.modes[link.src.index()].pipeline_latency()
    }

    fn pre_retransmit(&self, link: LinkId) -> bool {
        self.modes[link.src.index()].pre_retransmit()
    }

    fn hop_arq(&self, link: LinkId) -> bool {
        self.modes[link.src.index()].ecc_enabled()
    }

    fn eject_check(
        &mut self,
        flits: &[Flit],
        _cycle: u64,
        _counters: &mut EventCounters,
    ) -> EjectOutcome {
        if flits.iter().all(crc_ok_reference) {
            EjectOutcome::Accept
        } else {
            EjectOutcome::RequestRetransmit
        }
    }
}
