//! Differential coverage for the decision-tree *training* path.
//!
//! The reference network model cross-checks the data plane, but both
//! backends share `DecisionTree::fit` — so a training bug would sail
//! through the fuzz oracle undetected. These tests close the gap:
//!
//! * the production trainer is diffed bit-for-bit against the
//!   independent naive trainer in `rlnoc_verify::reftree` over fuzzed
//!   sample sets (including production-shaped Table-I feature vectors);
//! * the default `verify_fuzz` case stream is proven to contain
//!   DT-with-pretraining cases, so the end-to-end oracle really does
//!   execute training;
//! * one explicit DT-with-pretraining case runs through both backends
//!   and must agree bit-for-bit.

use noc_rl::decision_tree::{DecisionTree, TreeParams};
use noc_sim::flit::splitmix64;
use rlnoc_core::experiment::ErrorControlScheme;
use rlnoc_core::fuzzcase::FuzzCase;
use rlnoc_verify::{run_case, RefTree};

/// The default seed of the `verify_fuzz` binary's case stream — keep in
/// sync with `src/bin/verify_fuzz.rs`.
const VERIFY_FUZZ_DEFAULT_SEED: u64 = 0x5EED_F022;

/// Deterministic value stream for building fuzzed training sets.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// Uniform-ish f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A fuzzed regression dataset. Features are a mix of continuous and
/// coarsely quantized columns (the quantization forces the duplicate
/// values whose tie handling is the subtlest part of split search).
fn fuzz_dataset(seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut s = Stream(seed);
    let n = 1 + (s.next() % 96) as usize;
    let dim = 1 + (s.next() % 6) as usize;
    let quantized: Vec<bool> = (0..dim).map(|_| s.next() % 2 == 0).collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = quantized
            .iter()
            .map(|&q| {
                if q {
                    (s.next() % 5) as f64 / 4.0
                } else {
                    s.unit() * 100.0 - 50.0
                }
            })
            .collect();
        // A weak signal plus deterministic noise keeps trees non-trivial.
        let y = row.iter().sum::<f64>() * 0.1 + s.unit();
        xs.push(row);
        ys.push(y);
    }
    (xs, ys)
}

fn assert_trees_agree(xs: &[Vec<f64>], ys: &[f64], params: TreeParams, label: &str) {
    let production = DecisionTree::fit(xs, ys, params);
    let reference = RefTree::fit(xs, ys, params);
    assert_eq!(
        production.num_nodes(),
        reference.num_nodes(),
        "{label}: node counts differ"
    );
    // Bit-exact predictions on every training row…
    for (i, x) in xs.iter().enumerate() {
        assert_eq!(
            production.predict(x).to_bits(),
            reference.predict(x).to_bits(),
            "{label}: training row {i} predicts differently"
        );
    }
    // …and on off-sample probes straddling the split boundaries.
    let dim = xs[0].len();
    let mut s = Stream(0xABCD ^ xs.len() as u64);
    for probe in 0..64 {
        let x: Vec<f64> = (0..dim).map(|_| s.unit() * 120.0 - 60.0).collect();
        assert_eq!(
            production.predict(&x).to_bits(),
            reference.predict(&x).to_bits(),
            "{label}: probe {probe} predicts differently"
        );
    }
}

#[test]
fn production_fit_matches_reference_on_fuzzed_datasets() {
    for case in 0..120u64 {
        let (xs, ys) = fuzz_dataset(0xD7_0001 + case);
        assert_trees_agree(&xs, &ys, TreeParams::default(), &format!("case {case}"));
    }
}

#[test]
fn production_fit_matches_reference_across_params() {
    let variants = [
        TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        },
        TreeParams {
            max_depth: 2,
            min_samples_split: 2,
            min_variance: 0.0,
        },
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_variance: 0.0,
        },
        TreeParams {
            max_depth: 6,
            min_samples_split: 40,
            min_variance: 1e-3,
        },
    ];
    for (v, params) in variants.into_iter().enumerate() {
        for case in 0..24u64 {
            let (xs, ys) = fuzz_dataset(0xD7_1000 + case);
            assert_trees_agree(&xs, &ys, params, &format!("variant {v} case {case}"));
        }
    }
}

#[test]
fn production_fit_matches_reference_on_table_i_shaped_samples() {
    // The production training set: six Table-I router features per
    // sample, error-rate labels in [0, 1] — including long stretches of
    // (near-)identical rows, which is what an idle router produces.
    let mut s = Stream(0xD7_2000);
    for case in 0..40 {
        let n = 8 + (s.next() % 200) as usize;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let idle = s.next() % 3 == 0;
            let row = if idle {
                vec![0.0, 0.0, 0.0, 0.0, 0.0, 45.0]
            } else {
                vec![
                    s.unit(),               // buffer occupancy
                    s.unit(),               // input utilization
                    s.unit(),               // output utilization
                    s.unit() * 0.2,         // input NACK rate
                    s.unit() * 0.2,         // output NACK rate
                    40.0 + s.unit() * 60.0, // temperature °C
                ]
            };
            let y = if idle { 1e-9 } else { s.unit() * 0.05 };
            xs.push(row);
            ys.push(y);
        }
        assert_trees_agree(
            &xs,
            &ys,
            TreeParams::default(),
            &format!("table-i case {case}"),
        );
    }
}

#[test]
fn default_fuzz_stream_covers_dt_training() {
    // The end-to-end oracle only exercises training if the case stream
    // actually draws DT cases with a pre-training budget. Pin that
    // coverage for the default stream (and its first CI-sized batch).
    let dt_pretrained = (0..200)
        .map(|i| FuzzCase::generate(VERIFY_FUZZ_DEFAULT_SEED, i))
        .filter(|c| c.scheme == ErrorControlScheme::DecisionTree && c.pretrain_cycles > 0)
        .count();
    assert!(
        dt_pretrained >= 10,
        "default fuzz stream exercises DT training only {dt_pretrained}/200 times"
    );
}

#[test]
fn dt_case_with_pretraining_agrees_end_to_end() {
    // One explicit DT case whose pre-training window is guaranteed to
    // collect samples and fit a tree, run on both backends.
    let case = (0..)
        .map(|i| FuzzCase::generate(VERIFY_FUZZ_DEFAULT_SEED, i))
        .find(|c| c.scheme == ErrorControlScheme::DecisionTree && c.pretrain_cycles > 0)
        .expect("stream contains DT training cases");
    let out = run_case(&case);
    assert!(
        out.agrees(),
        "DT training case diverged:\ndiffs: {:?}",
        out.diffs
    );
}
