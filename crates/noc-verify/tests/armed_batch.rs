//! Batch-aware invariant coverage with the runtime checkers armed.
//!
//! Compiled only under the `verify` feature. Two angles on the
//! `BatchSim` sharing machinery under `RLNOC_VERIFY=1`:
//!
//! * a **positive run** — a hard-faulted batched replicate group, with
//!   per-lane flit-arena and credit conservation re-derived from scratch
//!   every simulated cycle inside each lane's `Network`, must still
//!   match its serial lanes bit for bit;
//! * a **corruption injection** — a deliberately wrong table planted in
//!   the shared fault-route cache must be caught by the armed coherence
//!   check (recompute-and-compare on every cache hit), proving the
//!   check has teeth rather than silently steering packets.

#![cfg(feature = "verify")]

use noc_fault::timing::TimingErrorModel;
use noc_fault::variation::VariationMap;
use noc_sim::config::NocConfig;
use noc_sim::network::{HardFaultEvent, HardFaultKind, Network, SharedTables};
use noc_sim::routing::FaultRoutes;
use noc_sim::topology::NodeId;
use rlnoc_core::fuzzcase::FuzzCase;
use rlnoc_core::protocol::FaultTolerantProtocol;
use rlnoc_verify::run_case_batched;

/// Must run before the first `Network::step` of this process caches the
/// arming verdict; every test in this binary arms first thing, so the
/// verdict is `armed` regardless of test order.
fn arm() {
    std::env::set_var("RLNOC_VERIFY", "1");
}

#[test]
fn batched_faulted_lanes_uphold_armed_invariants() {
    arm();
    let case = (0..64)
        .map(|i| FuzzCase::generate(0x5EED_BA7C, i))
        .find(|c| c.hard_faults.is_some())
        .expect("the stream must yield a hard-fault case quickly");
    let out = run_case_batched(&case, 2);
    assert!(
        out.agrees(),
        "armed batched lanes diverged:\n{}\ndiffs: {:?}",
        out.case,
        out.diffs
    );
}

#[test]
#[should_panic(expected = "shared fault-route cache entry")]
fn poisoned_shared_route_cache_is_caught() {
    arm();
    let config = NocConfig::builder().mesh(4, 4).build();
    let mesh = config.mesh;
    let shared = SharedTables::new(mesh);

    // Plant a wrong table under key 1 — the entry consulted after the
    // first (single-event) fault batch applies: routes computed as if
    // node 10 died, while the schedule below actually kills node 5.
    let mut alive = vec![true; mesh.num_nodes()];
    alive[10] = false;
    let wrong = FaultRoutes::compute(mesh, &alive, |u, d| {
        u.index() != 10 && mesh.neighbor(u, d).is_none_or(|v| v.index() != 10)
    });
    shared.fault_routes().poison_for_test(1, wrong);

    let variation = VariationMap::generate(4, 4, 0.0, 0.0, 1);
    let protocol = FaultTolerantProtocol::new(mesh, TimingErrorModel::default(), variation, 2);
    let mut net = Network::with_shared(config, protocol, 3, &shared);
    net.set_hard_faults(vec![HardFaultEvent {
        cycle: 10,
        kind: HardFaultKind::Router { node: NodeId(5) },
    }]);
    // Stepping past cycle 10 applies the fault batch, hits the poisoned
    // entry, and the armed recompute-and-compare must panic.
    for _ in 0..16 {
        net.step();
    }
}
