//! Differential-oracle integration tests.
//!
//! * A smoke batch of generated cases must agree bit-for-bit between the
//!   optimized kernel and the reference model (the CI fuzz job runs the
//!   same oracle at scale).
//! * A deliberately planted bug — [`StaleTemperatureBackend`] drops node
//!   0's temperature updates, the classic stale-cache mistake the
//!   epoch-cached error probabilities could make — must be caught by the
//!   differential driver and survive shrinking to a minimal, replayable,
//!   still-divergent case.

use noc_sim::network::Network;
use rlnoc_core::fuzzcase::FuzzCase;
use rlnoc_core::protocol::FaultTolerantProtocol;
use rlnoc_verify::{
    batch_sample_width, run_case, run_case_batched, run_case_with, shrink, StaleTemperatureBackend,
};

const SEED: u64 = 0x5EED_F00D;

type Optimized = Network<FaultTolerantProtocol>;

#[test]
fn optimized_and_reference_agree_on_smoke_batch() {
    for i in 0..6 {
        let case = FuzzCase::generate(SEED, i);
        let out = run_case(&case);
        assert!(
            out.agrees(),
            "case {i} diverged:\n{case}\ndiffs: {:?}",
            out.diffs
        );
    }
}

/// The default `verify_fuzz` stream (seed `0x5EED_F022`, 200 cases)
/// must exercise the hard-fault machinery: pin that it contains both
/// hard-fault and fault-free cases, so nobody can accidentally narrow
/// the generator and silently stop differential-testing faults.
#[test]
fn default_fuzz_stream_contains_hard_fault_and_fault_free_cases() {
    const DEFAULT_SEED: u64 = 0x5EED_F022;
    const DEFAULT_CASES: u64 = 200;
    let faulted = (0..DEFAULT_CASES)
        .filter(|&i| FuzzCase::generate(DEFAULT_SEED, i).hard_faults.is_some())
        .count();
    assert!(
        faulted > 0,
        "the default fuzz stream must contain hard-fault cases"
    );
    assert!(
        faulted < DEFAULT_CASES as usize,
        "the default fuzz stream must also keep fault-free cases"
    );
}

/// The default `verify_fuzz` stream must keep exercising the whole
/// topology zoo: every zoo member (2D mesh, torus, folded torus, 3D
/// mesh) must appear within the default 200 cases, and each of the
/// wrap-link topologies plus the 3D mesh must also appear *hard
/// faulted*, so the differential oracle keeps covering date-line VC
/// routing and up*/down* recovery on non-mesh graphs. Narrowing the
/// generator back to plain meshes fails here, loudly.
#[test]
fn default_fuzz_stream_covers_the_topology_zoo() {
    use noc_sim::topology::Topo;
    const DEFAULT_SEED: u64 = 0x5EED_F022;
    const DEFAULT_CASES: u64 = 200;
    // [mesh, torus, ftorus, 3d] × [fault-free, hard-faulted]
    let mut seen = [[0usize; 2]; 4];
    for i in 0..DEFAULT_CASES {
        let case = FuzzCase::generate(DEFAULT_SEED, i);
        let kind = match case.topo {
            Topo::Mesh(_) => 0,
            Topo::Torus(_) => 1,
            Topo::FoldedTorus(_) => 2,
            Topo::Mesh3d(_) => 3,
        };
        seen[kind][usize::from(case.hard_faults.is_some())] += 1;
    }
    for (kind, name) in ["mesh", "torus", "ftorus", "3d"].iter().enumerate() {
        assert!(
            seen[kind][0] > 0,
            "default stream lost fault-free {name} cases: {seen:?}"
        );
        assert!(
            seen[kind][1] > 0,
            "default stream lost hard-faulted {name} cases: {seen:?}"
        );
    }
}

/// The default fuzz stream folds the `BatchSim` engine in on a fixed
/// cadence: every eighth case re-runs as a batched replicate group with
/// widths cycling 2/4/8. Pin that policy so nobody can accidentally
/// drop the batched backend out of the differential stream, and check
/// the default 200-case run samples every width.
#[test]
fn batched_sampling_cadence_is_pinned() {
    for i in 0..32u64 {
        let expected = match i {
            0 => Some(2),
            8 => Some(4),
            16 => Some(8),
            24 => Some(2),
            _ => None,
        };
        assert_eq!(
            batch_sample_width(i),
            expected,
            "sampling policy changed at index {i}"
        );
    }
    let widths: std::collections::BTreeSet<usize> =
        (0..200).filter_map(batch_sample_width).collect();
    assert_eq!(
        widths.into_iter().collect::<Vec<_>>(),
        vec![2, 4, 8],
        "a default 200-case run must exercise every batch width"
    );
}

/// One sampled case actually run as a batched replicate group: every
/// lane must match its own serial run — the in-tree version of the
/// batched leg `verify_fuzz` runs at scale.
#[test]
fn batched_replicate_group_agrees_with_serial_lanes() {
    let case = FuzzCase::generate(SEED, 0);
    let out = run_case_batched(&case, 2);
    assert!(
        out.agrees(),
        "batched lanes diverged from serial:\n{case}\ndiffs: {:?}",
        out.diffs
    );
}

/// A generated hard-fault case must agree between engines — the quick
/// in-tree version of what the fuzz binary runs at scale.
#[test]
fn optimized_and_reference_agree_on_a_hard_fault_case() {
    let case = (0..64)
        .map(|i| FuzzCase::generate(SEED, i))
        .find(|c| c.hard_faults.is_some())
        .expect("the stream must yield a hard-fault case quickly");
    let out = run_case(&case);
    assert!(
        out.agrees(),
        "hard-fault case diverged:\n{case}\ndiffs: {:?}",
        out.diffs
    );
}

fn mutant_diverges(case: &FuzzCase) -> bool {
    !run_case_with::<Optimized, StaleTemperatureBackend>(case).agrees()
}

#[test]
fn planted_stale_temperature_bug_is_caught_and_shrunk() {
    let case = (0..24)
        .map(|i| FuzzCase::generate(SEED, i))
        .find(mutant_diverges)
        .expect("the planted stale-temperature bug must diverge within 24 generated cases");

    let minimal = shrink(&case, 32, mutant_diverges);
    minimal
        .validate()
        .expect("shrinking preserves well-formedness");
    assert!(
        mutant_diverges(&minimal),
        "shrunken case must still reproduce the divergence"
    );
    // The minimal case replays exactly through the on-disk format the
    // fuzzer writes for CI artifacts.
    let reparsed = FuzzCase::from_text(&minimal.to_text()).expect("case file round-trips");
    assert_eq!(reparsed, minimal);
    assert!(mutant_diverges(&reparsed));
}
