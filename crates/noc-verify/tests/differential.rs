//! Differential-oracle integration tests.
//!
//! * A smoke batch of generated cases must agree bit-for-bit between the
//!   optimized kernel and the reference model (the CI fuzz job runs the
//!   same oracle at scale).
//! * A deliberately planted bug — [`StaleTemperatureBackend`] drops node
//!   0's temperature updates, the classic stale-cache mistake the
//!   epoch-cached error probabilities could make — must be caught by the
//!   differential driver and survive shrinking to a minimal, replayable,
//!   still-divergent case.

use noc_sim::network::Network;
use rlnoc_core::fuzzcase::FuzzCase;
use rlnoc_core::protocol::FaultTolerantProtocol;
use rlnoc_verify::{run_case, run_case_with, shrink, StaleTemperatureBackend};

const SEED: u64 = 0x5EED_F00D;

type Optimized = Network<FaultTolerantProtocol>;

#[test]
fn optimized_and_reference_agree_on_smoke_batch() {
    for i in 0..6 {
        let case = FuzzCase::generate(SEED, i);
        let out = run_case(&case);
        assert!(
            out.agrees(),
            "case {i} diverged:\n{case}\ndiffs: {:?}",
            out.diffs
        );
    }
}

fn mutant_diverges(case: &FuzzCase) -> bool {
    !run_case_with::<Optimized, StaleTemperatureBackend>(case).agrees()
}

#[test]
fn planted_stale_temperature_bug_is_caught_and_shrunk() {
    let case = (0..24)
        .map(|i| FuzzCase::generate(SEED, i))
        .find(mutant_diverges)
        .expect("the planted stale-temperature bug must diverge within 24 generated cases");

    let minimal = shrink(&case, 32, mutant_diverges);
    minimal
        .validate()
        .expect("shrinking preserves well-formedness");
    assert!(
        mutant_diverges(&minimal),
        "shrunken case must still reproduce the divergence"
    );
    // The minimal case replays exactly through the on-disk format the
    // fuzzer writes for CI artifacts.
    let reparsed = FuzzCase::from_text(&minimal.to_text()).expect("case file round-trips");
    assert_eq!(reparsed, minimal);
    assert!(mutant_diverges(&reparsed));
}
