//! Full-pipeline run with the runtime invariant checkers armed.
//!
//! Compiled only under the `verify` feature (which forwards to
//! `noc-sim/verify` and `noc-rl/verify`); arming happens in-process so
//! the test needs no special environment. Every simulated cycle of the
//! optimized backend then re-derives flit conservation, credit
//! conservation, ARQ window sanity, and the stage counters from
//! scratch — and the run must still agree with the reference model.

#![cfg(feature = "verify")]

use rlnoc_core::fuzzcase::FuzzCase;
use rlnoc_verify::run_case;

#[test]
fn full_campaigns_uphold_runtime_invariants() {
    // Must be set before the first Network::step of this process reads
    // (and caches) the arming verdict — this test binary owns the
    // process, so doing it first thing in the only test is sound.
    std::env::set_var("RLNOC_VERIFY", "1");
    for i in 0..2 {
        let case = FuzzCase::generate(0x5EED_A11A, i);
        let out = run_case(&case);
        assert!(
            out.agrees(),
            "case {i} diverged under armed invariants:\n{case}\ndiffs: {:?}",
            out.diffs
        );
    }
}
