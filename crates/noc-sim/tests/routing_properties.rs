//! Property tests for X-Y routing, end-to-end delivery, and the
//! fault-adaptive up*/down* reroute layer.
//!
//! Guarantees the hot-path rewrite (precomputed [`RouteTable`],
//! [`NeighborTable`], flit arena) must not bend:
//!
//! 1. X-Y routing delivers **every** offered packet, on any mesh size.
//! 2. The hop count of an X-Y path equals the Manhattan distance
//!    between the endpoints.
//! 3. No flit is ever steered toward a non-neighbor port: at every
//!    router that is not the destination, the computed output direction
//!    points at an existing neighbor, and the precomputed tables agree
//!    with the reference [`xy_route`] everywhere.
//!
//! And for [`FaultRoutes`] under **arbitrary** fault sets (including
//! partitioning ones):
//!
//! 4. Every pair of live endpoints in the same live component gets a
//!    route that actually reaches the destination.
//! 5. No table entry ever points across a dead link, into a dead
//!    router, or out of a dead router; separated pairs get no route.
//! 6. The channel-dependency graph induced by every routed path is
//!    acyclic — the up*/down* deadlock-freedom argument, checked
//!    directly.

use noc_sim::config::NocConfig;
use noc_sim::error_control::PerfectLink;
use noc_sim::network::Network;
use noc_sim::routing::{xy_path, xy_route, FaultRoutes, RouteTable};
use noc_sim::topology::{Direction, Mesh, NeighborTable, NodeId};
use noc_testutil::{manhattan, pick_node};
use proptest::prelude::*;

proptest! {
    /// Hop count of the X-Y path is exactly the Manhattan distance, the
    /// path is contiguous (each step moves to a real neighbor), and the
    /// walk never routes off the mesh.
    #[test]
    fn xy_path_is_minimal_and_on_mesh(
        w in 1u16..9,
        h in 1u16..9,
        src_raw: u64,
        dst_raw: u64,
    ) {
        let mesh = Mesh::new(w, h);
        let src = pick_node(mesh, src_raw);
        let dst = pick_node(mesh, dst_raw);
        let path = xy_path(mesh, src, dst);

        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().expect("non-empty"), dst);
        prop_assert_eq!(path.len() as u64 - 1, manhattan(mesh, src, dst));
        prop_assert_eq!(path.len() as u64 - 1, mesh.hop_distance(src, dst) as u64);

        for pair in path.windows(2) {
            let dir = xy_route(mesh, pair[0], dst);
            prop_assert!(dir != Direction::Local, "only dst routes Local");
            // The chosen output port must have a neighbor behind it…
            let next = mesh.neighbor(pair[0], dir);
            prop_assert_eq!(next, Some(pair[1]), "step follows the route");
        }
        prop_assert_eq!(xy_route(mesh, dst, dst), Direction::Local);
    }

    /// The precomputed `RouteTable`/`NeighborTable` pair agrees with the
    /// reference implementation on **every** (current, dst) pair of the
    /// sampled mesh, and never yields a direction without a neighbor —
    /// i.e. no flit can be enqueued toward a non-neighbor port.
    #[test]
    fn route_table_never_points_at_a_missing_neighbor(w in 1u16..9, h in 1u16..9) {
        let mesh = Mesh::new(w, h);
        let routes = RouteTable::new(mesh);
        let neighbors = NeighborTable::new(mesh);
        for current in mesh.nodes() {
            for dst in mesh.nodes() {
                let dir = routes.next_hop(current, dst);
                prop_assert_eq!(dir, xy_route(mesh, current, dst));
                if current == dst {
                    prop_assert_eq!(dir, Direction::Local);
                } else {
                    let next = neighbors.get(current, dir);
                    prop_assert_eq!(next, mesh.neighbor(current, dir));
                    prop_assert!(next.is_some(), "route at {:?} toward {:?} exits via {:?} which has no neighbor", current, dst, dir);
                }
            }
        }
    }

    /// On a fault-free network, X-Y routing delivers every offered
    /// packet — arbitrary mesh sizes, arbitrary src/dst pairs — and each
    /// delivery takes at least the Manhattan-distance lower bound in
    /// cycles.
    #[test]
    fn every_offered_packet_is_delivered(
        w in 2u16..7,
        h in 2u16..7,
        seed: u64,
        n_packets in 1usize..32,
    ) {
        let config = NocConfig::builder().mesh(w, h).build();
        let mesh = config.mesh;
        let mut net = Network::new(config, PerfectLink::new(), seed);

        // Derive the src/dst list from the seed with the same splitmix
        // family the simulator uses for payloads.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut min_hops = u64::MAX;
        for _ in 0..n_packets {
            let src = pick_node(mesh, next());
            let mut dst = pick_node(mesh, next());
            if src == dst {
                dst = NodeId(((dst.index() + 1) % mesh.num_nodes()) as u16);
            }
            min_hops = min_hops.min(manhattan(mesh, src, dst));
            net.offer(src, dst);
            net.step();
        }
        prop_assert!(net.run_until_quiescent(500_000), "network drains");

        let stats = net.stats();
        prop_assert_eq!(stats.packets_injected, n_packets as u64);
        prop_assert_eq!(stats.packets_delivered, n_packets as u64);
        prop_assert_eq!(stats.latency.count(), n_packets as u64);
        prop_assert_eq!(stats.packets_failed_crc, 0);
        prop_assert_eq!(stats.silent_corruptions, 0);
        prop_assert!(
            stats.latency.min() >= min_hops,
            "a packet cannot beat its Manhattan distance: min latency {} < {}",
            stats.latency.min(),
            min_hops
        );
    }
}

// ---------------------------------------------------------------------------
// Fault-adaptive routing under arbitrary fault sets.

/// A faulted topology: dead-router and dead-link masks, symmetric, with
/// router deaths killing every incident link.
struct FaultedTopology {
    mesh: Mesh,
    node_dead: Vec<bool>,
    link_dead: Vec<[bool; 4]>,
}

impl FaultedTopology {
    fn build(w: u16, h: u16, router_kills: &[u64], link_kills: &[u64]) -> Self {
        let mesh = Mesh::new(w, h);
        let n = mesh.num_nodes();
        let mut t = Self {
            mesh,
            node_dead: vec![false; n],
            link_dead: vec![[false; 4]; n],
        };
        for &raw in link_kills {
            let node = NodeId((raw % n as u64) as u16);
            let dir = Direction::from_index(((raw >> 32) % 4) as usize);
            t.kill_link(node, dir);
        }
        for &raw in router_kills {
            let node = NodeId((raw % n as u64) as u16);
            t.node_dead[node.index()] = true;
            for dir in Direction::COMPASS {
                t.kill_link(node, dir);
            }
        }
        t
    }

    fn kill_link(&mut self, node: NodeId, dir: Direction) {
        if let Some(peer) = self.mesh.neighbor(node, dir) {
            self.link_dead[node.index()][dir.index()] = true;
            self.link_dead[peer.index()][dir.opposite().index()] = true;
        }
    }

    fn link_alive(&self, node: NodeId, dir: Direction) -> bool {
        !self.node_dead[node.index()]
            && !self.link_dead[node.index()][dir.index()]
            && self
                .mesh
                .neighbor(node, dir)
                .is_some_and(|p| !self.node_dead[p.index()])
    }

    fn routes(&self) -> FaultRoutes {
        let alive: Vec<bool> = self.node_dead.iter().map(|&d| !d).collect();
        FaultRoutes::compute(self.mesh, &alive, |u, d| self.link_alive(u, d))
    }

    /// Live-component label per node (usize::MAX for dead), by BFS —
    /// the independent reachability oracle the route table is checked
    /// against.
    fn components(&self) -> Vec<usize> {
        let n = self.mesh.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for start in self.mesh.nodes() {
            if self.node_dead[start.index()] || comp[start.index()] != usize::MAX {
                continue;
            }
            comp[start.index()] = start.index();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for dir in Direction::COMPASS {
                    if !self.link_alive(u, dir) {
                        continue;
                    }
                    let v = self.mesh.neighbor(u, dir).expect("live link has a peer");
                    if comp[v.index()] == usize::MAX {
                        comp[v.index()] = start.index();
                        queue.push_back(v);
                    }
                }
            }
        }
        comp
    }
}

/// Generator bounds shared by the fault-routing properties: meshes up
/// to 6×6, a handful of router and link kills — enough to partition
/// small meshes regularly.
fn router_kills() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..3)
}

fn link_kills() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..10)
}

proptest! {
    /// Reachable endpoints (live, same live component) are exactly the
    /// routed ones, and walking the table from any such source arrives
    /// at the destination: an up-phase hop strictly descends in rank
    /// and a down-phase hop strictly ascends, so `2·n` hops is a safe
    /// loop bound.
    #[test]
    fn fault_routes_deliver_between_reachable_endpoints(
        w in 2u16..7,
        h in 2u16..7,
        routers in router_kills(),
        links in link_kills(),
    ) {
        let t = FaultedTopology::build(w, h, &routers, &links);
        let routes = t.routes();
        let comp = t.components();
        let n = t.mesh.num_nodes();
        for src in t.mesh.nodes() {
            for dst in t.mesh.nodes() {
                let connected = comp[src.index()] != usize::MAX
                    && comp[src.index()] == comp[dst.index()];
                prop_assert_eq!(
                    routes.reachable(src, dst),
                    connected,
                    "table reachability must match BFS for {:?}→{:?}",
                    src,
                    dst
                );
                if !connected || src == dst {
                    continue;
                }
                let mut current = src;
                let mut hops = 0;
                while current != dst {
                    let dir = routes
                        .next_hop(current, dst)
                        .expect("connected pair must have a hop");
                    prop_assert!(dir != Direction::Local, "Local before dst");
                    current = t.mesh.neighbor(current, dir).expect("hop stays on mesh");
                    hops += 1;
                    prop_assert!(hops <= 2 * n, "route loops: {:?}→{:?}", src, dst);
                }
            }
        }
    }

    /// No route crosses a dead element: every table entry leaves a live
    /// router over a live link into a live router, and dead endpoints
    /// have no routes at all (in either direction).
    #[test]
    fn fault_routes_never_touch_dead_elements(
        w in 2u16..7,
        h in 2u16..7,
        routers in router_kills(),
        links in link_kills(),
    ) {
        let t = FaultedTopology::build(w, h, &routers, &links);
        let routes = t.routes();
        for u in t.mesh.nodes() {
            for dst in t.mesh.nodes() {
                let Some(dir) = routes.next_hop(u, dst) else { continue };
                prop_assert!(
                    !t.node_dead[u.index()] && !t.node_dead[dst.index()],
                    "dead endpoint routed: {:?}→{:?}",
                    u,
                    dst
                );
                if dir == Direction::Local {
                    prop_assert_eq!(u, dst, "Local only at the destination");
                    continue;
                }
                prop_assert!(
                    t.link_alive(u, dir),
                    "route {:?}→{:?} via {:?} crosses a dead link or router",
                    u,
                    dst,
                    dir
                );
            }
        }
    }

    /// The channel-dependency graph of all routed paths is acyclic —
    /// every walk only ever holds a channel while requesting the next
    /// channel of the same path, so an acyclic CDG rules out routing
    /// deadlock (the up*/down* argument, verified rather than assumed).
    #[test]
    fn fault_routes_channel_dependency_graph_is_acyclic(
        w in 2u16..7,
        h in 2u16..7,
        routers in router_kills(),
        links in link_kills(),
    ) {
        let t = FaultedTopology::build(w, h, &routers, &links);
        let routes = t.routes();
        let n = t.mesh.num_nodes();
        // Channel id = outgoing (node, dir); dependency c1 → c2 when
        // some routed path traverses c1 and then immediately c2.
        let mut deps = vec![std::collections::BTreeSet::new(); n * 4];
        for src in t.mesh.nodes() {
            for dst in t.mesh.nodes() {
                if src == dst || !routes.reachable(src, dst) {
                    continue;
                }
                let mut current = src;
                let mut prev_channel: Option<usize> = None;
                while current != dst {
                    let dir = routes.next_hop(current, dst).expect("reachable pair");
                    let channel = current.index() * 4 + dir.index();
                    if let Some(p) = prev_channel {
                        deps[p].insert(channel);
                    }
                    prev_channel = Some(channel);
                    current = t.mesh.neighbor(current, dir).expect("hop stays on mesh");
                }
            }
        }
        // Iterative three-color DFS over the dependency graph.
        let mut color = vec![0u8; n * 4]; // 0 white, 1 gray, 2 black
        for start in 0..n * 4 {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((c, done)) = stack.pop() {
                if done {
                    color[c] = 2;
                    continue;
                }
                if color[c] == 2 {
                    continue;
                }
                color[c] = 1;
                stack.push((c, true));
                for &next in &deps[c] {
                    prop_assert!(
                        color[next] != 1,
                        "channel-dependency cycle through channel {next}"
                    );
                    if color[next] == 0 {
                        stack.push((next, false));
                    }
                }
            }
        }
    }
}
