//! Property tests for minimal routing, end-to-end delivery, and the
//! fault-adaptive up*/down* reroute layer — on 2D meshes and across
//! the whole topology zoo (torus, folded torus, 3D mesh).
//!
//! Guarantees the hot-path rewrite (precomputed [`RouteTable`],
//! [`NeighborTable`], flit arena) must not bend:
//!
//! 1. X-Y routing delivers **every** offered packet, on any mesh size.
//! 2. The hop count of an X-Y path equals the Manhattan distance
//!    between the endpoints.
//! 3. No flit is ever steered toward a non-neighbor port: at every
//!    router that is not the destination, the computed output direction
//!    points at an existing neighbor, and the precomputed tables agree
//!    with the reference [`xy_route`] everywhere.
//!
//! And for [`FaultRoutes`] under **arbitrary** fault sets (including
//! partitioning ones):
//!
//! 4. Every pair of live endpoints in the same live component gets a
//!    route that actually reaches the destination.
//! 5. No table entry ever points across a dead link, into a dead
//!    router, or out of a dead router; separated pairs get no route.
//! 6. The channel-dependency graph induced by every routed path is
//!    acyclic — the up*/down* deadlock-freedom argument, checked
//!    directly.

use noc_sim::config::NocConfig;
use noc_sim::error_control::PerfectLink;
use noc_sim::network::Network;
use noc_sim::routing::{min_route, xy_path, xy_route, FaultRoutes, RouteTable};
use noc_sim::topology::{
    Direction, FoldedTorus, Mesh, Mesh3d, NeighborTable, NodeId, Topo, Torus, VcClass, MAX_PORTS,
};
use noc_testutil::{manhattan, pick_node};
use proptest::prelude::*;

/// One zoo member per `kind`, so every property below can range over
/// the whole topology zoo with a single extra proptest input.
fn zoo_topo(kind: usize, w: u16, h: u16, d: u16) -> Topo {
    match kind % 4 {
        0 => Mesh::new(w, h).into(),
        1 => Torus::new(w, h).into(),
        2 => FoldedTorus::new(w, h).into(),
        _ => Mesh3d::new(w, h, d).into(),
    }
}

/// Independent minimal-distance oracle, computed from raw node indices
/// with none of the topology code's own helpers: plain Manhattan on a
/// mesh, wrap-aware ring distance per dimension on (folded) tori, 3D
/// Manhattan on stacked meshes.
fn oracle_distance(topo: Topo, a: NodeId, b: NodeId) -> u64 {
    let (ai, bi) = (a.index() as u64, b.index() as u64);
    let line = |x: u64, y: u64| x.abs_diff(y);
    let ring = |x: u64, y: u64, n: u64| {
        let d = x.abs_diff(y);
        d.min(n - d)
    };
    match topo {
        Topo::Mesh(m) => {
            let w = u64::from(m.width());
            line(ai % w, bi % w) + line(ai / w, bi / w)
        }
        Topo::Torus(t) => {
            let (w, h) = (u64::from(t.width()), u64::from(t.height()));
            ring(ai % w, bi % w, w) + ring(ai / w, bi / w, h)
        }
        Topo::FoldedTorus(t) => {
            let (w, h) = (u64::from(t.width()), u64::from(t.height()));
            ring(ai % w, bi % w, w) + ring(ai / w, bi / w, h)
        }
        Topo::Mesh3d(m) => {
            let (w, h) = (u64::from(m.width()), u64::from(m.height()));
            line(ai % w, bi % w) + line(ai / w % h, bi / w % h) + line(ai / (w * h), bi / (w * h))
        }
    }
}

proptest! {
    /// Hop count of the X-Y path is exactly the Manhattan distance, the
    /// path is contiguous (each step moves to a real neighbor), and the
    /// walk never routes off the mesh.
    #[test]
    fn xy_path_is_minimal_and_on_mesh(
        w in 1u16..9,
        h in 1u16..9,
        src_raw: u64,
        dst_raw: u64,
    ) {
        let mesh = Mesh::new(w, h);
        let src = pick_node(mesh, src_raw);
        let dst = pick_node(mesh, dst_raw);
        let path = xy_path(mesh, src, dst);

        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().expect("non-empty"), dst);
        prop_assert_eq!(path.len() as u64 - 1, manhattan(mesh, src, dst));
        prop_assert_eq!(path.len() as u64 - 1, mesh.hop_distance(src, dst) as u64);

        for pair in path.windows(2) {
            let dir = xy_route(mesh, pair[0], dst);
            prop_assert!(dir != Direction::Local, "only dst routes Local");
            // The chosen output port must have a neighbor behind it…
            let next = mesh.neighbor(pair[0], dir);
            prop_assert_eq!(next, Some(pair[1]), "step follows the route");
        }
        prop_assert_eq!(xy_route(mesh, dst, dst), Direction::Local);
    }

    /// The precomputed `RouteTable`/`NeighborTable` pair agrees with the
    /// reference implementation on **every** (current, dst) pair of the
    /// sampled mesh, and never yields a direction without a neighbor —
    /// i.e. no flit can be enqueued toward a non-neighbor port.
    #[test]
    fn route_table_never_points_at_a_missing_neighbor(w in 1u16..9, h in 1u16..9) {
        let mesh = Mesh::new(w, h);
        let routes = RouteTable::new(mesh);
        let neighbors = NeighborTable::new(mesh);
        for current in mesh.nodes() {
            for dst in mesh.nodes() {
                let dir = routes.next_hop(current, dst);
                prop_assert_eq!(dir, xy_route(mesh, current, dst));
                if current == dst {
                    prop_assert_eq!(dir, Direction::Local);
                } else {
                    let next = neighbors.get(current, dir);
                    prop_assert_eq!(next, mesh.neighbor(current, dir));
                    prop_assert!(next.is_some(), "route at {:?} toward {:?} exits via {:?} which has no neighbor", current, dst, dir);
                }
            }
        }
    }

    /// On a fault-free network, X-Y routing delivers every offered
    /// packet — arbitrary mesh sizes, arbitrary src/dst pairs — and each
    /// delivery takes at least the Manhattan-distance lower bound in
    /// cycles.
    #[test]
    fn every_offered_packet_is_delivered(
        w in 2u16..7,
        h in 2u16..7,
        seed: u64,
        n_packets in 1usize..32,
    ) {
        let config = NocConfig::builder().mesh(w, h).build();
        let mesh = config.mesh;
        let mut net = Network::new(config, PerfectLink::new(), seed);

        // Derive the src/dst list from the seed with the same splitmix
        // family the simulator uses for payloads.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut min_hops = u64::MAX;
        for _ in 0..n_packets {
            let src = pick_node(mesh, next());
            let mut dst = pick_node(mesh, next());
            if src == dst {
                dst = NodeId(((dst.index() + 1) % mesh.num_nodes()) as u16);
            }
            min_hops = min_hops.min(manhattan(mesh, src, dst));
            net.offer(src, dst);
            net.step();
        }
        prop_assert!(net.run_until_quiescent(500_000), "network drains");

        let stats = net.stats();
        prop_assert_eq!(stats.packets_injected, n_packets as u64);
        prop_assert_eq!(stats.packets_delivered, n_packets as u64);
        prop_assert_eq!(stats.latency.count(), n_packets as u64);
        prop_assert_eq!(stats.packets_failed_crc, 0);
        prop_assert_eq!(stats.silent_corruptions, 0);
        prop_assert!(
            stats.latency.min() >= min_hops,
            "a packet cannot beat its Manhattan distance: min latency {} < {}",
            stats.latency.min(),
            min_hops
        );
    }
}

// ---------------------------------------------------------------------------
// The same wall, extended across the topology zoo.

proptest! {
    /// On every zoo member, the minimal path walked by `min_route` has
    /// exactly the minimal length — checked against an *independent*
    /// distance oracle (wrap-aware on tori, 3D Manhattan on stacked
    /// meshes), not the topology's own `hop_distance` — stays on the
    /// topology, and agrees with `hop_distance` everywhere.
    #[test]
    fn zoo_min_path_is_minimal_and_on_topology(
        kind in 0usize..4,
        w in 2u16..7,
        h in 2u16..7,
        d in 2u16..4,
        src_raw: u64,
        dst_raw: u64,
    ) {
        let topo = zoo_topo(kind, w, h, d);
        let src = pick_node(topo, src_raw);
        let dst = pick_node(topo, dst_raw);
        let path = xy_path(topo, src, dst);

        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().expect("non-empty"), dst);
        prop_assert_eq!(path.len() as u64 - 1, oracle_distance(topo, src, dst));
        prop_assert_eq!(path.len() as u64 - 1, manhattan(topo, src, dst));

        for pair in path.windows(2) {
            let (dir, _class) = min_route(topo, pair[0], dst);
            prop_assert!(dir != Direction::Local, "only dst routes Local");
            prop_assert_eq!(topo.neighbor(pair[0], dir), Some(pair[1]), "step follows the route");
        }
        prop_assert_eq!(min_route(topo, dst, dst).0, Direction::Local);
    }

    /// The precomputed tables agree with `min_route` (direction *and*
    /// VC class) on every (current, dst) pair of every zoo member, and
    /// never yield a direction without a neighbor behind it — wrap
    /// links and vertical links included.
    #[test]
    fn zoo_route_table_never_points_at_a_missing_neighbor(
        kind in 0usize..4,
        w in 2u16..7,
        h in 2u16..7,
        d in 2u16..4,
    ) {
        let topo = zoo_topo(kind, w, h, d);
        let routes = RouteTable::new(topo);
        let neighbors = NeighborTable::new(topo);
        for current in topo.nodes() {
            for dst in topo.nodes() {
                let (dir, class) = routes.next_hop_class(current, dst);
                prop_assert_eq!((dir, class), min_route(topo, current, dst));
                prop_assert_eq!(dir, routes.next_hop(current, dst));
                if current == dst {
                    prop_assert_eq!(dir, Direction::Local);
                } else {
                    let next = neighbors.get(current, dir);
                    prop_assert_eq!(next, topo.neighbor(current, dir));
                    prop_assert!(next.is_some(), "route at {:?} toward {:?} exits via {:?} which has no neighbor", current, dst, dir);
                }
            }
        }
    }

    /// Fault-free delivery across the zoo: every offered packet is
    /// delivered on tori, folded tori, and 3D meshes alike, and no
    /// delivery beats the independent minimal-distance lower bound.
    #[test]
    fn zoo_every_offered_packet_is_delivered(
        kind in 1usize..4, // the mesh case is covered above
        w in 2u16..6,
        h in 2u16..6,
        d in 2u16..4,
        seed: u64,
        n_packets in 1usize..24,
    ) {
        let topo = zoo_topo(kind, w, h, d);
        let config = NocConfig::builder().topology(topo).build();
        let mut net = Network::new(config, PerfectLink::new(), seed);

        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut min_hops = u64::MAX;
        for _ in 0..n_packets {
            let src = pick_node(topo, next());
            let mut dst = pick_node(topo, next());
            if src == dst {
                dst = NodeId(((dst.index() + 1) % topo.num_nodes()) as u16);
            }
            min_hops = min_hops.min(oracle_distance(topo, src, dst));
            net.offer(src, dst);
            net.step();
        }
        prop_assert!(net.run_until_quiescent(500_000), "network drains");

        let stats = net.stats();
        prop_assert_eq!(stats.packets_injected, n_packets as u64);
        prop_assert_eq!(stats.packets_delivered, n_packets as u64);
        prop_assert_eq!(stats.packets_failed_crc, 0);
        prop_assert_eq!(stats.silent_corruptions, 0);
        prop_assert!(
            stats.latency.min() >= min_hops,
            "a packet cannot beat its minimal distance: min latency {} < {}",
            stats.latency.min(),
            min_hops
        );
    }

    /// Date-line deadlock freedom, verified rather than assumed: on
    /// (folded) tori and 3D meshes, model one virtual channel per
    /// `(node, out-direction, vc)` at the topology's **minimum** VC
    /// provisioning, expand each hop's [`VcClass`] to its admissible VC
    /// set, and check that the channel-dependency graph induced by all
    /// minimal routes is acyclic. This is exactly the argument that
    /// lets dimension-order routing cross wrap links without deadlock.
    #[test]
    fn zoo_dateline_channel_dependency_graph_is_acyclic(
        kind in 1usize..4,
        w in 2u16..7,
        h in 2u16..7,
        d in 2u16..4,
    ) {
        let topo = zoo_topo(kind, w, h, d);
        let n = topo.num_nodes();
        let vcs = topo.min_vcs();
        let chans = n * MAX_PORTS * vcs as usize;
        let chan = |node: NodeId, dir: Direction, vc: usize| {
            (node.index() * MAX_PORTS + dir.index()) * vcs as usize + vc
        };
        let mut deps = vec![std::collections::BTreeSet::new(); chans];
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let mut current = src;
                let mut prev: Option<(Direction, VcClass)> = None;
                while current != dst {
                    let (dir, class) = min_route(topo, current, dst);
                    if let Some((pdir, pclass)) = prev {
                        // The flit holds a VC of the previous hop's
                        // class while requesting one of this hop's.
                        let pnode = topo
                            .neighbor(current, pdir.opposite())
                            .expect("previous hop came from a neighbor");
                        for pvc in pclass.vc_range(vcs) {
                            for nvc in class.vc_range(vcs) {
                                deps[chan(pnode, pdir, pvc)].insert(chan(current, dir, nvc));
                            }
                        }
                    }
                    prev = Some((dir, class));
                    current = topo.neighbor(current, dir).expect("hop stays on topology");
                }
            }
        }
        // Iterative three-color DFS over the dependency graph.
        let mut color = vec![0u8; chans];
        for start in 0..chans {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((c, done)) = stack.pop() {
                if done {
                    color[c] = 2;
                    continue;
                }
                if color[c] == 2 {
                    continue;
                }
                color[c] = 1;
                stack.push((c, true));
                for &next in &deps[c] {
                    prop_assert!(
                        color[next] != 1,
                        "date-line channel-dependency cycle through channel {next}"
                    );
                    if color[next] == 0 {
                        stack.push((next, false));
                    }
                }
            }
        }
    }
}

/// The u16-capacity radix points named by the campaign layer — 32×32
/// flat topologies and the 8×8×4 stack — build full route/neighbor
/// tables and agree with `min_route` on every pair (a 1024²-entry
/// exhaustive sweep per topology, deterministic rather than sampled).
#[test]
fn zoo_route_tables_are_sound_at_32x32_and_8x8x4_radix() {
    let zoo: [Topo; 4] = [
        Mesh::new(32, 32).into(),
        Torus::new(32, 32).into(),
        FoldedTorus::new(32, 32).into(),
        Mesh3d::new(8, 8, 4).into(),
    ];
    for topo in zoo {
        let routes = RouteTable::new(topo);
        let neighbors = NeighborTable::new(topo);
        for current in topo.nodes() {
            for dst in topo.nodes() {
                let (dir, class) = routes.next_hop_class(current, dst);
                assert_eq!((dir, class), min_route(topo, current, dst));
                if current != dst {
                    assert_eq!(neighbors.get(current, dir), topo.neighbor(current, dir));
                    assert!(
                        neighbors.get(current, dir).is_some(),
                        "{topo:?}: route at {current:?} toward {dst:?} exits via {dir:?} \
                         which has no neighbor"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-adaptive routing under arbitrary fault sets.

/// A faulted topology (any zoo member): dead-router and dead-link
/// masks, symmetric, with router deaths killing every incident link.
struct FaultedTopology {
    topo: Topo,
    node_dead: Vec<bool>,
    link_dead: Vec<[bool; MAX_PORTS]>,
}

impl FaultedTopology {
    fn build(topo: impl Into<Topo>, router_kills: &[u64], link_kills: &[u64]) -> Self {
        let topo = topo.into();
        let n = topo.num_nodes();
        let mut t = Self {
            topo,
            node_dead: vec![false; n],
            link_dead: vec![[false; MAX_PORTS]; n],
        };
        let compass = topo.compass();
        for &raw in link_kills {
            let node = NodeId((raw % n as u64) as u16);
            let dir = compass[((raw >> 32) % compass.len() as u64) as usize];
            t.kill_link(node, dir);
        }
        for &raw in router_kills {
            let node = NodeId((raw % n as u64) as u16);
            t.node_dead[node.index()] = true;
            for &dir in compass {
                t.kill_link(node, dir);
            }
        }
        t
    }

    fn kill_link(&mut self, node: NodeId, dir: Direction) {
        if let Some(peer) = self.topo.neighbor(node, dir) {
            self.link_dead[node.index()][dir.index()] = true;
            self.link_dead[peer.index()][dir.opposite().index()] = true;
        }
    }

    fn link_alive(&self, node: NodeId, dir: Direction) -> bool {
        !self.node_dead[node.index()]
            && !self.link_dead[node.index()][dir.index()]
            && self
                .topo
                .neighbor(node, dir)
                .is_some_and(|p| !self.node_dead[p.index()])
    }

    fn routes(&self) -> FaultRoutes {
        let alive: Vec<bool> = self.node_dead.iter().map(|&d| !d).collect();
        FaultRoutes::compute(self.topo, &alive, |u, d| self.link_alive(u, d))
    }

    /// Live-component label per node (usize::MAX for dead), by BFS —
    /// the independent reachability oracle the route table is checked
    /// against.
    fn components(&self) -> Vec<usize> {
        let n = self.topo.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for start in self.topo.nodes() {
            if self.node_dead[start.index()] || comp[start.index()] != usize::MAX {
                continue;
            }
            comp[start.index()] = start.index();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &dir in self.topo.compass() {
                    if !self.link_alive(u, dir) {
                        continue;
                    }
                    let v = self.topo.neighbor(u, dir).expect("live link has a peer");
                    if comp[v.index()] == usize::MAX {
                        comp[v.index()] = start.index();
                        queue.push_back(v);
                    }
                }
            }
        }
        comp
    }
}

/// Generator bounds shared by the fault-routing properties: zoo
/// members up to 6×6 (×3 deep), a handful of router and link kills —
/// enough to partition the small topologies regularly.
fn router_kills() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..3)
}

fn link_kills() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..10)
}

proptest! {
    /// Reachable endpoints (live, same live component) are exactly the
    /// routed ones, and walking the table from any such source arrives
    /// at the destination: an up-phase hop strictly descends in rank
    /// and a down-phase hop strictly ascends, so `2·n` hops is a safe
    /// loop bound.
    #[test]
    fn fault_routes_deliver_between_reachable_endpoints(
        kind in 0usize..4,
        w in 2u16..7,
        h in 2u16..7,
        d in 2u16..4,
        routers in router_kills(),
        links in link_kills(),
    ) {
        let t = FaultedTopology::build(zoo_topo(kind, w, h, d), &routers, &links);
        let routes = t.routes();
        let comp = t.components();
        let n = t.topo.num_nodes();
        for src in t.topo.nodes() {
            for dst in t.topo.nodes() {
                let connected = comp[src.index()] != usize::MAX
                    && comp[src.index()] == comp[dst.index()];
                prop_assert_eq!(
                    routes.reachable(src, dst),
                    connected,
                    "table reachability must match BFS for {:?}→{:?}",
                    src,
                    dst
                );
                if !connected || src == dst {
                    continue;
                }
                let mut current = src;
                let mut hops = 0;
                while current != dst {
                    let dir = routes
                        .next_hop(current, dst)
                        .expect("connected pair must have a hop");
                    prop_assert!(dir != Direction::Local, "Local before dst");
                    current = t.topo.neighbor(current, dir).expect("hop stays on the topology");
                    hops += 1;
                    prop_assert!(hops <= 2 * n, "route loops: {:?}→{:?}", src, dst);
                }
            }
        }
    }

    /// No route crosses a dead element: every table entry leaves a live
    /// router over a live link into a live router, and dead endpoints
    /// have no routes at all (in either direction).
    #[test]
    fn fault_routes_never_touch_dead_elements(
        kind in 0usize..4,
        w in 2u16..7,
        h in 2u16..7,
        d in 2u16..4,
        routers in router_kills(),
        links in link_kills(),
    ) {
        let t = FaultedTopology::build(zoo_topo(kind, w, h, d), &routers, &links);
        let routes = t.routes();
        for u in t.topo.nodes() {
            for dst in t.topo.nodes() {
                let Some(dir) = routes.next_hop(u, dst) else { continue };
                prop_assert!(
                    !t.node_dead[u.index()] && !t.node_dead[dst.index()],
                    "dead endpoint routed: {:?}→{:?}",
                    u,
                    dst
                );
                if dir == Direction::Local {
                    prop_assert_eq!(u, dst, "Local only at the destination");
                    continue;
                }
                prop_assert!(
                    t.link_alive(u, dir),
                    "route {:?}→{:?} via {:?} crosses a dead link or router",
                    u,
                    dst,
                    dir
                );
            }
        }
    }

    /// The channel-dependency graph of all routed paths is acyclic —
    /// every walk only ever holds a channel while requesting the next
    /// channel of the same path, so an acyclic CDG rules out routing
    /// deadlock (the up*/down* argument, verified rather than assumed).
    #[test]
    fn fault_routes_channel_dependency_graph_is_acyclic(
        kind in 0usize..4,
        w in 2u16..7,
        h in 2u16..7,
        d in 2u16..4,
        routers in router_kills(),
        links in link_kills(),
    ) {
        let t = FaultedTopology::build(zoo_topo(kind, w, h, d), &routers, &links);
        let routes = t.routes();
        let n = t.topo.num_nodes();
        // Channel id = outgoing (node, dir); dependency c1 → c2 when
        // some routed path traverses c1 and then immediately c2.
        let mut deps = vec![std::collections::BTreeSet::new(); n * MAX_PORTS];
        for src in t.topo.nodes() {
            for dst in t.topo.nodes() {
                if src == dst || !routes.reachable(src, dst) {
                    continue;
                }
                let mut current = src;
                let mut prev_channel: Option<usize> = None;
                while current != dst {
                    let dir = routes.next_hop(current, dst).expect("reachable pair");
                    let channel = current.index() * MAX_PORTS + dir.index();
                    if let Some(p) = prev_channel {
                        deps[p].insert(channel);
                    }
                    prev_channel = Some(channel);
                    current = t.topo.neighbor(current, dir).expect("hop stays on the topology");
                }
            }
        }
        // Iterative three-color DFS over the dependency graph.
        let mut color = vec![0u8; n * MAX_PORTS]; // 0 white, 1 gray, 2 black
        for start in 0..n * MAX_PORTS {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((c, done)) = stack.pop() {
                if done {
                    color[c] = 2;
                    continue;
                }
                if color[c] == 2 {
                    continue;
                }
                color[c] = 1;
                stack.push((c, true));
                for &next in &deps[c] {
                    prop_assert!(
                        color[next] != 1,
                        "channel-dependency cycle through channel {next}"
                    );
                    if color[next] == 0 {
                        stack.push((next, false));
                    }
                }
            }
        }
    }
}
