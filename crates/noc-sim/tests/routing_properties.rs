//! Property tests for X-Y routing and end-to-end delivery.
//!
//! Three guarantees the hot-path rewrite (precomputed [`RouteTable`],
//! [`NeighborTable`], flit arena) must not bend:
//!
//! 1. X-Y routing delivers **every** offered packet, on any mesh size.
//! 2. The hop count of an X-Y path equals the Manhattan distance
//!    between the endpoints.
//! 3. No flit is ever steered toward a non-neighbor port: at every
//!    router that is not the destination, the computed output direction
//!    points at an existing neighbor, and the precomputed tables agree
//!    with the reference [`xy_route`] everywhere.

use noc_sim::config::NocConfig;
use noc_sim::error_control::PerfectLink;
use noc_sim::network::Network;
use noc_sim::routing::{xy_path, xy_route, RouteTable};
use noc_sim::topology::{Direction, Mesh, NeighborTable, NodeId};
use noc_testutil::{manhattan, pick_node};
use proptest::prelude::*;

proptest! {
    /// Hop count of the X-Y path is exactly the Manhattan distance, the
    /// path is contiguous (each step moves to a real neighbor), and the
    /// walk never routes off the mesh.
    #[test]
    fn xy_path_is_minimal_and_on_mesh(
        w in 1u16..9,
        h in 1u16..9,
        src_raw: u64,
        dst_raw: u64,
    ) {
        let mesh = Mesh::new(w, h);
        let src = pick_node(mesh, src_raw);
        let dst = pick_node(mesh, dst_raw);
        let path = xy_path(mesh, src, dst);

        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().expect("non-empty"), dst);
        prop_assert_eq!(path.len() as u64 - 1, manhattan(mesh, src, dst));
        prop_assert_eq!(path.len() as u64 - 1, mesh.hop_distance(src, dst) as u64);

        for pair in path.windows(2) {
            let dir = xy_route(mesh, pair[0], dst);
            prop_assert!(dir != Direction::Local, "only dst routes Local");
            // The chosen output port must have a neighbor behind it…
            let next = mesh.neighbor(pair[0], dir);
            prop_assert_eq!(next, Some(pair[1]), "step follows the route");
        }
        prop_assert_eq!(xy_route(mesh, dst, dst), Direction::Local);
    }

    /// The precomputed `RouteTable`/`NeighborTable` pair agrees with the
    /// reference implementation on **every** (current, dst) pair of the
    /// sampled mesh, and never yields a direction without a neighbor —
    /// i.e. no flit can be enqueued toward a non-neighbor port.
    #[test]
    fn route_table_never_points_at_a_missing_neighbor(w in 1u16..9, h in 1u16..9) {
        let mesh = Mesh::new(w, h);
        let routes = RouteTable::new(mesh);
        let neighbors = NeighborTable::new(mesh);
        for current in mesh.nodes() {
            for dst in mesh.nodes() {
                let dir = routes.next_hop(current, dst);
                prop_assert_eq!(dir, xy_route(mesh, current, dst));
                if current == dst {
                    prop_assert_eq!(dir, Direction::Local);
                } else {
                    let next = neighbors.get(current, dir);
                    prop_assert_eq!(next, mesh.neighbor(current, dir));
                    prop_assert!(next.is_some(), "route at {:?} toward {:?} exits via {:?} which has no neighbor", current, dst, dir);
                }
            }
        }
    }

    /// On a fault-free network, X-Y routing delivers every offered
    /// packet — arbitrary mesh sizes, arbitrary src/dst pairs — and each
    /// delivery takes at least the Manhattan-distance lower bound in
    /// cycles.
    #[test]
    fn every_offered_packet_is_delivered(
        w in 2u16..7,
        h in 2u16..7,
        seed: u64,
        n_packets in 1usize..32,
    ) {
        let config = NocConfig::builder().mesh(w, h).build();
        let mesh = config.mesh;
        let mut net = Network::new(config, PerfectLink::new(), seed);

        // Derive the src/dst list from the seed with the same splitmix
        // family the simulator uses for payloads.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut min_hops = u64::MAX;
        for _ in 0..n_packets {
            let src = pick_node(mesh, next());
            let mut dst = pick_node(mesh, next());
            if src == dst {
                dst = NodeId(((dst.index() + 1) % mesh.num_nodes()) as u16);
            }
            min_hops = min_hops.min(manhattan(mesh, src, dst));
            net.offer(src, dst);
            net.step();
        }
        prop_assert!(net.run_until_quiescent(500_000), "network drains");

        let stats = net.stats();
        prop_assert_eq!(stats.packets_injected, n_packets as u64);
        prop_assert_eq!(stats.packets_delivered, n_packets as u64);
        prop_assert_eq!(stats.latency.count(), n_packets as u64);
        prop_assert_eq!(stats.packets_failed_crc, 0);
        prop_assert_eq!(stats.silent_corruptions, 0);
        prop_assert!(
            stats.latency.min() >= min_hops,
            "a packet cannot beat its Manhattan distance: min latency {} < {}",
            stats.latency.min(),
            min_hops
        );
    }
}
