//! The lane-equivalence test wall for the `BatchSim` batched lockstep
//! engine.
//!
//! Every test here pins the same contract from a different angle: a
//! lane of a batched run is byte-identical — the full
//! [`ExperimentReport`], every field — to running that experiment alone
//! on the serial backend. Lanes share immutable tables (routes,
//! neighbors, post-fault reroutes) through
//! [`noc_sim::network::SharedTables`], so these tests are what makes
//! "shared" provably mean "read-only".

use noc_fault::hardfault::HardFaultSchedule;
use noc_sim::config::NocConfig;
use noc_sim::topology::{FoldedTorus, Mesh, Mesh3d, Topo, Torus};
use rlnoc_core::experiment::ExperimentReport;
use rlnoc_core::{ErrorControlScheme, Experiment, WorkloadProfile};
use std::sync::Arc;

/// One replicate lane of a campaign cell. `cell_seed` picks the cell,
/// `lane` derives the replicate seed the way `Campaign::tasks` does.
fn lane(
    scheme: ErrorControlScheme,
    workload: WorkloadProfile,
    cell_seed: u64,
    lane: u64,
    faults: Option<Arc<HardFaultSchedule>>,
) -> Experiment {
    lane_on(Mesh::new(4, 4), scheme, workload, cell_seed, lane, faults)
}

/// Same cell shape on an arbitrary zoo member.
fn lane_on(
    topo: impl Into<Topo>,
    scheme: ErrorControlScheme,
    workload: WorkloadProfile,
    cell_seed: u64,
    lane: u64,
    faults: Option<Arc<HardFaultSchedule>>,
) -> Experiment {
    let mut builder = Experiment::builder()
        .scheme(scheme)
        .workload(workload)
        .noc(NocConfig::builder().topology(topo).build())
        .pretrain_cycles(3_000)
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .drain_limit(30_000)
        .seed(rand::seed_stream(cell_seed, lane));
    if let Some(schedule) = faults {
        builder = builder.hard_faults(schedule);
    }
    builder.build().expect("valid lane configuration")
}

fn serial_reports(lanes: &[Experiment]) -> Vec<ExperimentReport> {
    lanes.iter().cloned().map(Experiment::run).collect()
}

#[test]
fn every_lane_is_byte_identical_to_serial_for_k_1_2_4_8() {
    for k in [1usize, 2, 4, 8] {
        let lanes: Vec<Experiment> = (0..k as u64)
            .map(|i| {
                lane(
                    ErrorControlScheme::ProposedRl,
                    WorkloadProfile::blackscholes(),
                    7,
                    i,
                    None,
                )
            })
            .collect();
        let serial = serial_reports(&lanes);
        let batched = Experiment::run_batch(lanes);
        assert_eq!(serial, batched, "K={k} lanes must match serial exactly");
    }
}

#[test]
fn ragged_lane_counts_match_serial() {
    // Odd counts that never fill a power-of-two batch: the engine must
    // not care how many lanes it is given.
    for k in [3u64, 5, 7] {
        let lanes: Vec<Experiment> = (0..k)
            .map(|i| {
                lane(
                    ErrorControlScheme::StaticArqEcc,
                    WorkloadProfile::canneal(),
                    11,
                    i,
                    None,
                )
            })
            .collect();
        let serial = serial_reports(&lanes);
        let batched = Experiment::run_batch(lanes);
        assert_eq!(serial, batched, "ragged K={k} lanes must match serial");
    }
}

#[test]
fn results_are_invariant_under_lane_permutation() {
    let build = |order: &[u64]| -> Vec<Experiment> {
        order
            .iter()
            .map(|&i| {
                lane(
                    ErrorControlScheme::ProposedRl,
                    WorkloadProfile::blackscholes(),
                    13,
                    i,
                    None,
                )
            })
            .collect()
    };
    let forward = Experiment::run_batch(build(&[0, 1, 2, 3]));
    let shuffled = Experiment::run_batch(build(&[2, 0, 3, 1]));
    for (slot, &src) in [2usize, 0, 3, 1].iter().enumerate() {
        assert_eq!(
            shuffled[slot], forward[src],
            "lane order is an execution detail, not an input"
        );
    }
}

#[test]
fn hard_faulted_lanes_share_reroute_tables_and_still_match_serial() {
    // All lanes carry the same schedule, so the batched engine computes
    // each post-fault reroute table once and shares it; the serial runs
    // recompute per lane. Identical reports prove the cache is
    // coherent.
    let schedule = Arc::new(HardFaultSchedule::random(
        Mesh::new(4, 4),
        3,
        1,
        (100, 5_000),
        23,
    ));
    let lanes: Vec<Experiment> = (0..4u64)
        .map(|i| {
            lane(
                ErrorControlScheme::ProposedRl,
                WorkloadProfile::blackscholes(),
                17,
                i,
                Some(schedule.clone()),
            )
        })
        .collect();
    let serial = serial_reports(&lanes);
    assert!(
        serial.iter().any(|r| r.hard_fault_events > 0),
        "the schedule must actually fire inside the simulated window"
    );
    let batched = Experiment::run_batch(lanes);
    assert_eq!(serial, batched, "shared reroute tables must be invisible");
}

#[test]
fn mixed_cells_in_one_batch_match_serial() {
    // A batch is allowed to mix cells (different schemes, workloads,
    // and fault schedules): sharing degrades per cell, results do not.
    let schedule = Arc::new(HardFaultSchedule::random(
        Mesh::new(4, 4),
        2,
        0,
        (100, 4_000),
        29,
    ));
    let lanes = vec![
        lane(
            ErrorControlScheme::StaticCrc,
            WorkloadProfile::blackscholes(),
            19,
            0,
            None,
        ),
        lane(
            ErrorControlScheme::ProposedRl,
            WorkloadProfile::canneal(),
            19,
            1,
            Some(schedule.clone()),
        ),
        lane(
            ErrorControlScheme::DecisionTree,
            WorkloadProfile::blackscholes(),
            19,
            2,
            Some(schedule),
        ),
    ];
    let serial = serial_reports(&lanes);
    let batched = Experiment::run_batch(lanes);
    assert_eq!(serial, batched);
}

#[test]
fn lanes_whose_operation_modes_diverge_still_match_serial() {
    // RL-controlled lanes with different replicate seeds drift into
    // different operation modes mid-run, so the fused kernel executes
    // genuinely different per-hop protection paths (ARQ on/off, ECC
    // on/off) lane by lane. The run is only meaningful if that
    // divergence actually happens, so it is asserted, not assumed.
    let lanes: Vec<Experiment> = (0..4u64)
        .map(|i| {
            lane(
                ErrorControlScheme::ProposedRl,
                WorkloadProfile::canneal(),
                37,
                i,
                None,
            )
        })
        .collect();
    let serial = serial_reports(&lanes);
    assert!(
        serial
            .iter()
            .any(|r| r.mode_histogram != serial[0].mode_histogram),
        "replicate lanes must diverge in mode decisions for this test to bite"
    );
    let batched = Experiment::run_batch(lanes);
    assert_eq!(serial, batched, "mode-divergent lanes must match serial");
}

#[test]
fn per_lane_distinct_mid_run_fault_schedules_match_serial() {
    // Every lane carries a *different* schedule (router kills included),
    // so the shared `FaultRouteCache` never gets a cross-lane hit and
    // each lane walks its own evacuation/divert/purge path through the
    // fused kernel while traffic is in flight.
    let lanes: Vec<Experiment> = (0..4u64)
        .map(|i| {
            let schedule = Arc::new(HardFaultSchedule::random(
                Mesh::new(4, 4),
                2,
                1,
                (600, 3_000),
                43 + i,
            ));
            lane(
                ErrorControlScheme::StaticArqEcc,
                WorkloadProfile::blackscholes(),
                31,
                i,
                Some(schedule),
            )
        })
        .collect();
    let serial = serial_reports(&lanes);
    assert!(
        serial.iter().all(|r| r.hard_fault_events > 0),
        "every lane's schedule must fire mid-run"
    );
    assert!(
        serial
            .iter()
            .any(|r| r.reroute_events != serial[0].reroute_events
                || r.packets_lost_hard_fault != serial[0].packets_lost_hard_fault
                || r.packets_delivered != serial[0].packets_delivered),
        "distinct schedules must produce observably different lane outcomes"
    );
    let batched = Experiment::run_batch(lanes);
    assert_eq!(
        serial, batched,
        "per-lane fault schedules must match serial"
    );
}

#[test]
fn telemetry_spans_leave_every_report_byte_unchanged() {
    // With telemetry enabled the simulator steps through the six
    // *split* spanned phases; disabled, it runs the fused single-pass
    // kernel. Identical reports under both settings prove the fused
    // kernel is observation-equivalent to the split shape — and that
    // instrumentation never perturbs results.
    let schedule = Arc::new(HardFaultSchedule::random(
        Mesh::new(4, 4),
        3,
        1,
        (100, 5_000),
        23,
    ));
    let build = |tel: Option<rlnoc_telemetry::Telemetry>| -> Vec<Experiment> {
        (0..3u64)
            .map(|i| {
                let mut b = Experiment::builder()
                    .scheme(ErrorControlScheme::ProposedRl)
                    .workload(WorkloadProfile::blackscholes())
                    .noc(NocConfig::builder().mesh(4, 4).build())
                    .pretrain_cycles(3_000)
                    .warmup_cycles(500)
                    .measure_cycles(3_000)
                    .drain_limit(30_000)
                    .hard_faults(schedule.clone())
                    .seed(rand::seed_stream(47, i));
                if let Some(t) = &tel {
                    b = b.telemetry(t.clone());
                }
                b.build().expect("valid lane configuration")
            })
            .collect()
    };
    let plain = serial_reports(&build(None));
    let spanned = serial_reports(&build(Some(rlnoc_telemetry::Telemetry::enabled())));
    assert_eq!(
        plain, spanned,
        "split (spanned) and fused (plain) pipelines must agree byte for byte"
    );
    let batched_spanned = Experiment::run_batch(build(Some(rlnoc_telemetry::Telemetry::enabled())));
    assert_eq!(plain, batched_spanned, "lockstep spanned runs agree too");
}

/// The lane-equivalence contract extended across the topology zoo:
/// batched lockstep lanes on a torus (with mid-run hard faults, so the
/// shared reroute cache covers wrap links), a folded torus, and a 3D
/// mesh (with faults hitting vertical links) all stay byte-identical
/// to their serial runs.
#[test]
fn zoo_lanes_match_serial() {
    let cells: [(Topo, Option<Arc<HardFaultSchedule>>); 3] = [
        (
            Torus::new(4, 4).into(),
            Some(Arc::new(HardFaultSchedule::random(
                Torus::new(4, 4),
                3,
                1,
                (3_600, 4_800),
                53,
            ))),
        ),
        (FoldedTorus::new(4, 4).into(), None),
        (
            Mesh3d::new(4, 2, 2).into(),
            Some(Arc::new(HardFaultSchedule::random(
                Mesh3d::new(4, 2, 2),
                2,
                1,
                (3_600, 4_800),
                59,
            ))),
        ),
    ];
    for (topo, faults) in cells {
        let lanes: Vec<Experiment> = (0..4u64)
            .map(|i| {
                lane_on(
                    topo,
                    ErrorControlScheme::ProposedRl,
                    WorkloadProfile::blackscholes(),
                    61,
                    i,
                    faults.clone(),
                )
            })
            .collect();
        let serial = serial_reports(&lanes);
        if faults.is_some() {
            assert!(
                serial.iter().any(|r| r.hard_fault_events > 0),
                "the {topo:?} schedule must fire inside the simulated window"
            );
        }
        let batched = Experiment::run_batch(lanes);
        assert_eq!(
            serial, batched,
            "{topo:?} lanes must be byte-identical to serial"
        );
    }
}

/// Deterministic fuzz over random (scheme, seed, fault) cells. Each
/// case runs 2 serial + 2 batched experiments; the case count is kept
/// small enough for the tier-1 budget and every case is reproducible
/// from the fixed root seed.
#[test]
fn fuzzed_cells_match_serial() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xBA7C_E001);
    for case in 0..6u64 {
        let scheme = ErrorControlScheme::ALL[rng.gen_range(0..4usize)];
        let cell_seed: u64 = rng.gen_range(0..1_000u64);
        let faults = rng.gen_range(0..2u32).eq(&1).then(|| {
            Arc::new(HardFaultSchedule::random(
                Mesh::new(4, 4),
                2,
                0,
                (100, 4_000),
                cell_seed,
            ))
        });
        let lanes: Vec<Experiment> = (0..2u64)
            .map(|i| {
                lane(
                    scheme,
                    WorkloadProfile::blackscholes(),
                    cell_seed,
                    i,
                    faults.clone(),
                )
            })
            .collect();
        let serial = serial_reports(&lanes);
        let batched = Experiment::run_batch(lanes);
        assert_eq!(
            serial, batched,
            "fuzz case {case} ({scheme} seed {cell_seed}) diverged"
        );
    }
}
