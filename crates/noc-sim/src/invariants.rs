//! Runtime invariant checker for the optimized data plane.
//!
//! Compiled only under the `verify` cargo feature (as a child module of
//! [`network`](crate::network), so it can traverse the private event
//! wheel and router state) and armed at runtime by `RLNOC_VERIFY=1`.
//! Every armed cycle re-derives, from scratch, properties the optimized
//! kernel maintains incrementally:
//!
//! * **Flit conservation / arena leak accounting** — every live
//!   [`FlitArena`] slot is owned by exactly one input-FIFO entry,
//!   flit-carrying wheel event, priority-resend queue entry, or
//!   reassembly entry; the structural count must equal
//!   [`FlitArena::live`].
//! * **Credit conservation** — for every inter-router (output port, VC),
//!   held credits + downstream FIFO occupancy + in-flight flits and
//!   credit returns on that link sum to exactly `vc_depth`.
//! * **ARQ window sanity** — every go-back-N gate (`awaiting_retx`)
//!   names a sequence number the upstream retransmit buffer still holds
//!   a pristine copy of (NACKs keep entries; only ACKs release them),
//!   and no gate sits on a local injection port.
//! * **Hard-fault hygiene** (when a hard-fault schedule is active) —
//!   dead routers hold no arena flits or pending resends, no credit
//!   return in the event wheel targets a dead link (dead-link credits
//!   are deliberately lost, never replenished), and every entry of the
//!   fault-adaptive reroute table points at a live link to a live
//!   neighbor.
//! * **Pipeline-stage counters** — the incremental `occupied_vcs` /
//!   `rc_pending` / `needs_va` / `active_vcs` skip counters match a full
//!   rescan (the release-build analogue of
//!   [`Router::debug_check_stage_counters`]).
//! * **No-progress watchdog** — a non-quiescent network whose activity
//!   fingerprint has not changed for [`WATCHDOG_CYCLES`] cycles is
//!   declared deadlocked/livelocked.
//!
//! Violations panic with a diagnostic; the differential fuzzer surfaces
//! the panic together with the replayable case that triggered it.

use super::*;
use crate::flit::splitmix64;
use std::sync::OnceLock;

/// Cycles without any activity-fingerprint change (while non-quiescent)
/// before the watchdog declares a deadlock/livelock. Generously above
/// the worst legitimate stall (ARQ timeout ≪ 1k cycles).
const WATCHDOG_CYCLES: u64 = 20_000;

/// Test-only override: arms the checker regardless of the environment
/// (the env verdict is cached process-wide, which tests cannot rely on).
#[cfg(test)]
static FORCE_ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// `true` when the process opted into per-cycle invariant checking via
/// `RLNOC_VERIFY=1` (or `true`). Read once; the verdict is cached.
pub(crate) fn armed() -> bool {
    #[cfg(test)]
    if FORCE_ARMED.load(std::sync::atomic::Ordering::Relaxed) {
        return true;
    }
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| {
        matches!(
            std::env::var("RLNOC_VERIFY").as_deref(),
            Ok("1") | Ok("true")
        )
    })
}

/// Watchdog bookkeeping carried between cycles.
#[derive(Debug, Clone, Default)]
pub(crate) struct VerifyState {
    /// Activity fingerprint observed at `last_change_cycle`.
    fingerprint: u64,
    /// Last cycle at which the fingerprint changed.
    last_change_cycle: u64,
}

impl<E: ErrorControl> Network<E> {
    /// Checks every runtime invariant; called at the end of each
    /// [`Network::step`] when the checker is armed.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic on the first violated invariant.
    pub(crate) fn verify_invariants(&mut self) {
        if !armed() {
            return;
        }
        self.verify_arena_reachability();
        self.verify_credit_conservation();
        self.verify_arq_windows();
        self.verify_hard_faults();
        self.verify_stage_counters();
        self.verify_worklists();
        self.verify_watchdog();
    }

    /// Flit conservation: structural ownership count == arena live count.
    fn verify_arena_reachability(&self) {
        let mut fifo = 0usize;
        let mut resend = 0usize;
        for r in &self.routers {
            fifo += r.inputs.iter().map(|vc| vc.fifo.len()).sum::<usize>();
            resend += r
                .outputs
                .iter()
                .map(|o| o.retx_pending.len())
                .sum::<usize>();
        }
        let mut in_events = 0usize;
        for slot in &self.wheel.slots {
            for ev in slot {
                match ev {
                    Event::Arrival { .. } | Event::DirectDeliver { .. } | Event::Eject { .. } => {
                        in_events += 1;
                    }
                    Event::Credit { .. } | Event::AckSignal { .. } => {}
                }
            }
        }
        let reassembling: usize = self
            .reassembly
            .values()
            .flat_map(|entries| entries.iter())
            .map(|e| e.flits.len())
            .sum();
        let reachable = fifo + resend + in_events + reassembling;
        assert_eq!(
            reachable,
            self.arena.live(),
            "flit conservation violated at cycle {}: {} arena slots live but {} reachable \
             (fifo {fifo} + resend {resend} + events {in_events} + reassembly {reassembling})",
            self.cycle,
            self.arena.live(),
            reachable,
        );
    }

    /// Credit conservation: for every inter-router (node, output port,
    /// VC), credits held at the sender plus flits/credits in flight on
    /// the link plus downstream FIFO occupancy equals `vc_depth`.
    fn verify_credit_conservation(&self) {
        let v = self.config.vcs_per_port as usize;
        let np = self.mesh.num_ports();
        let slot = |node: usize, port: usize, vc: usize| (node * np + port) * v + vc;
        // In-flight debits per (upstream node, output port, vc): flits on
        // the wire (Arrival), accepted mode-2 duplicates one cycle from
        // the downstream buffer (DirectDeliver), and credits returning
        // upstream (Credit).
        let mut in_flight = vec![0u32; self.routers.len() * np * v];
        for events in &self.wheel.slots {
            for ev in events {
                match *ev {
                    Event::Arrival { link, vc, .. } => {
                        in_flight[slot(link.src.index(), link.dir.index(), vc as usize)] += 1;
                    }
                    Event::Credit { node, port, vc } => {
                        if port != Direction::Local {
                            in_flight[slot(node.index(), port.index(), vc as usize)] += 1;
                        }
                    }
                    Event::DirectDeliver {
                        node, in_port, vc, ..
                    } => {
                        let up = self
                            .neighbors
                            .get(node, in_port)
                            .expect("duplicate crossed a real link");
                        in_flight[slot(up.index(), in_port.opposite().index(), vc as usize)] += 1;
                    }
                    Event::Eject { .. } | Event::AckSignal { .. } => {}
                }
            }
        }
        for r in &self.routers {
            for dir in Direction::ALL {
                if dir == Direction::Local {
                    continue; // ejection port: modeled as never back-pressured
                }
                let Some(down) = self.neighbors.get(r.id, dir) else {
                    continue; // mesh edge: port unused
                };
                if self.faults.as_deref().is_some_and(|fs| {
                    fs.node_dead[r.id.index()]
                        || fs.node_dead[down.index()]
                        || fs.link_dead[r.id.index()][dir.index()]
                }) {
                    // Dead link: its credits are deliberately lost (flits
                    // evaporate without returns), so the sum runs short.
                    // `verify_hard_faults` owns the dead-side properties.
                    continue;
                }
                let in_port = dir.opposite().index();
                for vcn in 0..v {
                    let credits = u32::from(r.outputs[dir.index()].vcs[vcn].credits);
                    let fifo = self.routers[down.index()].input(in_port, vcn).fifo.len() as u32;
                    let flight = in_flight[slot(r.id.index(), dir.index(), vcn)];
                    assert_eq!(
                        credits + fifo + flight,
                        u32::from(self.config.vc_depth),
                        "credit conservation violated at cycle {} on {}:{dir} vc{vcn}: \
                         credits {credits} + downstream fifo {fifo} + in-flight {flight} \
                         != depth {}",
                        self.cycle,
                        r.id,
                        self.config.vc_depth,
                    );
                }
            }
        }
    }

    /// ARQ window sanity: every go-back-N gate awaits a sequence number
    /// whose pristine copy the upstream retransmit buffer still holds.
    fn verify_arq_windows(&self) {
        for r in &self.routers {
            for pi in 0..r.num_ports() {
                let dir = Direction::from_index(pi);
                for (vci, ivc) in r.port_vcs(pi).iter().enumerate() {
                    let Some(seq) = ivc.awaiting_retx else {
                        continue;
                    };
                    assert!(
                        dir != Direction::Local,
                        "ARQ gate on the injection port of {}",
                        r.id
                    );
                    let up = self
                        .neighbors
                        .get(r.id, dir)
                        .expect("gated input port faces a neighbor");
                    if self.faults.as_deref().is_some_and(|fs| {
                        fs.node_dead[r.id.index()]
                            || fs.node_dead[up.index()]
                            || fs.link_dead[r.id.index()][pi]
                    }) {
                        // A dead upstream's retransmit buffer was cleared;
                        // the fault purge is responsible for these gates.
                        continue;
                    }
                    let out = &self.routers[up.index()].outputs[dir.opposite().index()];
                    assert!(
                        out.retx_buffer.iter().any(|(s, _)| s == seq),
                        "ARQ gate at cycle {}: {}:{dir} vc{vci} awaits {seq} but upstream \
                         {up} no longer buffers it (premature release would deadlock the VC)",
                        self.cycle,
                        r.id,
                    );
                }
            }
        }
    }

    /// Hard-fault hygiene: dead routers are fully evacuated, dead-link
    /// credits are never replenished, and the fault-adaptive reroute
    /// table only ever points at live links to live neighbors.
    fn verify_hard_faults(&self) {
        let Some(fs) = self.faults.as_deref() else {
            return; // no schedule installed: nothing to police
        };
        // 1. Dead routers hold no arena flits: the evacuation drained
        //    every input FIFO and pending-resend queue and idled the VCs.
        for (ni, r) in self.routers.iter().enumerate() {
            if !fs.node_dead[ni] {
                continue;
            }
            let fifo: usize = r.inputs.iter().map(|vc| vc.fifo.len()).sum();
            let resend: usize = r.outputs.iter().map(|o| o.retx_pending.len()).sum();
            assert!(
                fifo == 0 && resend == 0 && r.occupied_vcs == 0,
                "dead router {} holds flits at cycle {}: {fifo} buffered, {resend} pending \
                 resends, {} occupied VCs (evacuation must drain everything)",
                r.id,
                self.cycle,
                r.occupied_vcs,
            );
        }
        // 2. Credits on dead links are never replenished: no credit
        //    return in flight may target a dead endpoint or channel.
        for events in &self.wheel.slots {
            for ev in events {
                if let Event::Credit { node, port, vc } = *ev {
                    assert!(
                        !fs.node_dead[node.index()] && !fs.link_dead[node.index()][port.index()],
                        "credit replenished on dead link at cycle {}: {}:{port} vc{vc} \
                         (dead-link credits are lost by design)",
                        self.cycle,
                        node,
                    );
                }
            }
        }
        // 3. Reroute table consistent with the live-neighbor set: every
        //    routed hop crosses a live link into a live router.
        if let Some(fr) = &fs.routes {
            for cur in self.mesh.nodes() {
                if fs.node_dead[cur.index()] {
                    continue;
                }
                for dst in self.mesh.nodes() {
                    let Some(dir) = fr.next_hop(cur, dst) else {
                        continue;
                    };
                    if dir == Direction::Local {
                        continue; // ejection at the destination itself
                    }
                    let live = !fs.link_dead[cur.index()][dir.index()]
                        && self
                            .neighbors
                            .get(cur, dir)
                            .is_some_and(|nb| !fs.node_dead[nb.index()]);
                    assert!(
                        live,
                        "reroute table inconsistent with live-neighbor set at cycle {}: \
                         {cur}→{dst} via {dir} crosses a dead link or router",
                        self.cycle,
                    );
                }
            }
        }
    }

    /// Pipeline-stage skip counters match a full VC rescan, in release
    /// builds too (the optimized phases trust these to skip routers).
    fn verify_stage_counters(&self) {
        for r in &self.routers {
            let (mut occupied, mut rc, mut va, mut active) = (0u32, 0u32, 0u32, 0u32);
            for vc in r.inputs.iter() {
                if vc.occupied() {
                    occupied += 1;
                }
                match vc.state {
                    VcState::Idle if !vc.fifo.is_empty() => rc += 1,
                    VcState::Idle => {}
                    VcState::NeedsVa { .. } => va += 1,
                    VcState::Active { .. } => active += 1,
                }
            }
            assert_eq!(
                (occupied, rc, va, active),
                (r.occupied_vcs, r.rc_pending, r.needs_va, r.active_vcs),
                "pipeline-stage counters diverged from rescan at {} (cycle {}): \
                 (occupied, rc, va, active)",
                r.id,
                self.cycle,
            );
        }
    }

    /// Worklist exactness: at the end of a step, pipeline worklist
    /// membership must equal its predicate (an occupied input VC or a
    /// pending priority resend) for every router, and injection
    /// worklist membership must equal an open injection or a non-empty
    /// source queue. A missing member silently freezes a router — the
    /// fused kernel only visits worklist members — while a stale member
    /// would survive the sampling pass's retirement scan only through a
    /// maintenance bug.
    fn verify_worklists(&self) {
        for (ri, r) in self.routers.iter().enumerate() {
            let should = r.occupied_vcs > 0 || r.outputs.iter().any(|o| !o.retx_pending.is_empty());
            assert_eq!(
                self.active.contains(ri),
                should,
                "pipeline worklist diverged from predicate at {} (cycle {}): \
                 member {} but occupied_vcs {} / pending resends {}",
                r.id,
                self.cycle,
                self.active.contains(ri),
                r.occupied_vcs,
                r.outputs
                    .iter()
                    .map(|o| o.retx_pending.len())
                    .sum::<usize>(),
            );
        }
        for ni in 0..self.routers.len() {
            let should = self.inject_progress[ni].is_some() || !self.source_queues[ni].is_empty();
            assert_eq!(
                self.inject_active.contains(ni),
                should,
                "injection worklist diverged from predicate at node {ni} (cycle {}): \
                 member {} but open injection {} / queued {}",
                self.cycle,
                self.inject_active.contains(ni),
                self.inject_progress[ni].is_some(),
                self.source_queues[ni].len(),
            );
        }
    }

    /// No-progress watchdog: a non-quiescent network whose activity
    /// fingerprint is frozen for [`WATCHDOG_CYCLES`] is stuck.
    fn verify_watchdog(&mut self) {
        let fp = self.activity_fingerprint();
        if fp != self.verify.fingerprint {
            self.verify.fingerprint = fp;
            self.verify.last_change_cycle = self.cycle;
            return;
        }
        if self.cycle - self.verify.last_change_cycle >= WATCHDOG_CYCLES && !self.is_quiescent() {
            panic!(
                "no-progress watchdog: network non-quiescent with no activity since cycle {} \
                 (now {}): deadlock or livelock",
                self.verify.last_change_cycle, self.cycle,
            );
        }
    }

    /// Order-sensitive hash over the monotone activity counters; any
    /// flit movement, signal, or delivery changes it.
    fn activity_fingerprint(&self) -> u64 {
        let mut h = 0xA5A5_0001u64;
        let mut mix = |x: u64| h = splitmix64(h ^ x);
        mix(self.stats.packets_injected);
        mix(self.stats.packets_delivered);
        mix(self.stats.flits_delivered);
        mix(self.stats.hop_nacks);
        mix(self.stats.flit_retransmissions);
        mix(self.stats.packet_retransmissions);
        for c in &self.counters {
            mix(c.buffer_writes);
            mix(c.buffer_reads);
            mix(c.ack_signals);
            mix(c.retransmit_sends);
            mix(c.link_traversals.iter().sum());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_control::{PerfectLink, ScriptedErrorControl};

    fn armed_net<E: ErrorControl>(protocol: E) -> Network<E> {
        FORCE_ARMED.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(armed());
        let config = NocConfig::builder().mesh(4, 4).build();
        Network::new(config, protocol, 77)
    }

    fn offer_all_pairs<E: ErrorControl>(net: &mut Network<E>) {
        let mesh = net.mesh();
        for src in mesh.nodes() {
            let dst = NodeId(((src.index() + 5) % mesh.num_nodes()) as u16);
            if src != dst {
                net.offer(src, dst);
            }
        }
    }

    #[test]
    fn clean_traffic_upholds_every_invariant() {
        let mut net = armed_net(PerfectLink::new());
        offer_all_pairs(&mut net);
        assert!(net.run_until_quiescent(10_000));
    }

    #[test]
    fn arq_heavy_traffic_upholds_every_invariant() {
        let mut net = armed_net(ScriptedErrorControl::reject_every(3));
        offer_all_pairs(&mut net);
        assert!(net.run_until_quiescent(20_000));
        assert!(
            net.stats().flit_retransmissions > 0,
            "scenario must exercise ARQ"
        );
    }

    #[test]
    fn pre_retransmit_traffic_upholds_every_invariant() {
        let protocol = ScriptedErrorControl::reject_every(4).with_pre_retransmit(true);
        let mut net = armed_net(protocol);
        offer_all_pairs(&mut net);
        assert!(net.run_until_quiescent(20_000));
        assert!(
            net.stats().pre_retransmit_hits > 0,
            "scenario must exercise mode 2"
        );
    }

    #[test]
    #[should_panic(expected = "credit conservation violated")]
    fn stolen_credit_is_detected() {
        let mut net = armed_net(PerfectLink::new());
        net.routers[0].outputs[Direction::East.index()].vcs[0].credits -= 1;
        net.step();
    }

    #[test]
    #[should_panic(expected = "flit conservation violated")]
    fn leaked_arena_slot_is_detected() {
        let mut net = armed_net(PerfectLink::new());
        let packet = Packet {
            id: PacketId(0),
            src: NodeId(0),
            dst: NodeId(1),
            num_flits: 1,
            class: PacketClass::Data,
            injected_at: 0,
            payload_seed: 1,
        };
        // Allocate a slot no FIFO, event, or reassembly entry owns.
        let _ = net.arena.alloc(packet.make_flit(0, 0, &Crc32::new()));
        net.step();
    }

    #[test]
    #[should_panic(expected = "ARQ gate")]
    fn orphaned_arq_gate_is_detected() {
        let mut net = armed_net(ScriptedErrorControl::reliable());
        // Gate an input VC on a sequence number the upstream never sent.
        net.routers[0]
            .input_mut(Direction::East.index(), 0)
            .awaiting_retx = Some(SequenceNumber::new(41));
        net.step();
    }

    #[test]
    #[should_panic(expected = "pipeline-stage counters diverged")]
    fn corrupted_stage_counter_is_detected() {
        let mut net = armed_net(PerfectLink::new());
        net.routers[0].rc_pending += 1;
        net.step();
    }

    #[test]
    #[should_panic(expected = "pipeline worklist diverged")]
    fn dropped_worklist_member_is_detected() {
        let mut net = armed_net(PerfectLink::new());
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        // Let the packet buffer somewhere mid-mesh, then knock its
        // router off the worklist: the fused kernel would never visit
        // it again, silently freezing the packet in place.
        for _ in 0..6 {
            net.step();
        }
        let stuck = (0..net.routers.len())
            .find(|&ri| net.routers[ri].occupied_vcs > 0)
            .expect("a router must hold the in-flight packet");
        net.active.remove(stuck);
        net.verify_invariants();
    }

    #[test]
    #[should_panic(expected = "injection worklist diverged")]
    fn dropped_injection_member_is_detected() {
        let mut net = armed_net(PerfectLink::new());
        let mesh = net.mesh();
        // Saturate node 0's injection port so its source queue stays
        // non-empty, then hide the node from the injection worklist.
        for _ in 0..8 {
            net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        }
        net.step();
        assert!(
            net.inject_progress[0].is_some() || !net.source_queues[0].is_empty(),
            "fixture must leave injection work at node 0"
        );
        net.inject_active.remove(0);
        net.verify_invariants();
    }

    /// Armed network with the router at (1, 1) already dead: the common
    /// fixture for the hard-fault corruption-injection tests below.
    fn armed_faulted_net() -> Network<PerfectLink> {
        let mut net = armed_net(PerfectLink::new());
        let dead = net.mesh().node_at(1, 1);
        net.set_hard_faults(vec![HardFaultEvent {
            cycle: 1,
            kind: HardFaultKind::Router { node: dead },
        }]);
        for _ in 0..4 {
            net.step();
        }
        assert!(net.node_dead(dead), "fixture fault must have applied");
        net
    }

    #[test]
    fn hard_fault_traffic_upholds_every_invariant() {
        let mut net = armed_net(ScriptedErrorControl::reject_every(5));
        let mesh = net.mesh();
        net.set_hard_faults(vec![
            HardFaultEvent {
                cycle: 20,
                kind: HardFaultKind::Link {
                    node: mesh.node_at(0, 0),
                    dir: Direction::East,
                },
            },
            HardFaultEvent {
                cycle: 30,
                kind: HardFaultKind::Router {
                    node: mesh.node_at(2, 2),
                },
            },
        ]);
        offer_all_pairs(&mut net);
        assert!(net.run_until_quiescent(20_000));
        let stats = net.stats();
        assert_eq!(stats.hard_fault_events, 2);
        assert_eq!(
            stats.packets_delivered + stats.packets_lost_hard_fault,
            stats.packets_injected,
            "conservation must hold under armed hard-fault checking"
        );
    }

    #[test]
    #[should_panic(expected = "dead router")]
    fn flit_in_dead_router_is_detected() {
        use crate::router::BufferedFlit;
        let mut net = armed_faulted_net();
        let dead = net.mesh().node_at(1, 1);
        let packet = Packet {
            id: PacketId(900),
            src: NodeId(0),
            dst: NodeId(1),
            num_flits: 1,
            class: PacketClass::Data,
            injected_at: 0,
            payload_seed: 1,
        };
        // Smuggle an arena flit into the evacuated router's input FIFO.
        let flit = net.arena.alloc(packet.make_flit(0, 0, &Crc32::new()));
        net.routers[dead.index()]
            .input_mut(Direction::East.index(), 0)
            .fifo
            .push_back(BufferedFlit {
                flit,
                arrived_at: 0,
            });
        // Invoke the checker directly: a full step would trip the
        // debug-build stage-counter assertion before it gets here.
        net.verify_invariants();
    }

    #[test]
    #[should_panic(expected = "credit replenished on dead link")]
    fn replenished_dead_link_credit_is_detected() {
        let mut net = armed_faulted_net();
        // (0, 1)'s East channel leads into the dead router: schedule a
        // credit return onto it as if a flit had just drained there.
        let west_neighbor = net.mesh().node_at(0, 1);
        let now = net.cycle;
        net.wheel.push(
            now,
            now + 1,
            Event::Credit {
                node: west_neighbor,
                port: Direction::East,
                vc: 0,
            },
        );
        net.step();
    }

    #[test]
    #[should_panic(expected = "reroute table inconsistent")]
    fn stale_reroute_entry_is_detected() {
        let mut net = armed_faulted_net();
        let mesh = net.mesh();
        let (cur, dst) = (mesh.node_at(0, 1), mesh.node_at(3, 3));
        // Point a live pair's route straight into the dead router. The
        // table sits behind an `Arc` (shareable across batch lanes);
        // `make_mut` unshares this network's copy before corrupting it.
        let routes = net
            .faults
            .as_mut()
            .expect("fixture installed a schedule")
            .routes
            .as_mut()
            .expect("fixture applied a fault");
        std::sync::Arc::make_mut(routes).corrupt_entry(cur, dst, Direction::East);
        net.step();
    }
}
