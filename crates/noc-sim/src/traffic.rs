//! Synthetic traffic generation.
//!
//! Classic NoC evaluation patterns (uniform random, transpose,
//! bit-complement, tornado, hotspot, nearest-neighbor) plus the
//! [`TrafficSource`] trait that lets any generator — synthetic or
//! trace-driven — drive a [`Network`](crate::network::Network).

use crate::topology::{NodeId, Topo};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Something that decides, cycle by cycle, which packets enter the
/// network.
pub trait TrafficSource {
    /// Yields the `(src, dst)` pairs of packets offered at `cycle` by
    /// invoking `offer` for each.
    fn generate(&mut self, cycle: u64, offer: &mut dyn FnMut(NodeId, NodeId));

    /// `true` when the source will never offer another packet (finite
    /// traces); synthetic sources run forever and return `false`.
    fn is_exhausted(&self) -> bool {
        false
    }
}

/// The spatial component of a synthetic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Destination drawn uniformly among all other nodes.
    UniformRandom,
    /// Node (x, y) sends to (y, x).
    Transpose,
    /// Node with index `i` sends to `N-1-i` (bit complement on square
    /// power-of-two meshes).
    BitComplement,
    /// Node (x, y) sends to ((x + ⌈W/2⌉) mod W, y) — adversarial for
    /// meshes.
    Tornado,
    /// A fraction `fraction` of traffic targets `hotspot`; the rest is
    /// uniform random.
    Hotspot {
        /// The hot node.
        hotspot: NodeId,
        /// Fraction of packets sent to the hot node (0.0..=1.0).
        fraction: f64,
    },
    /// Each node sends to its east neighbor (wrapping to the row start).
    NearestNeighbor,
}

impl TrafficPattern {
    /// Resolves the destination for a packet from `src`, using `rng` for
    /// the random patterns. Returns `None` when the pattern maps a node
    /// onto itself (such packets are skipped).
    ///
    /// Spatial patterns act on the topology's 2D projection (for a 3D
    /// mesh, the stacked `width × height·depth` plane), so every
    /// pattern is defined on every member of the zoo.
    pub fn destination(
        self,
        mesh: impl Into<Topo>,
        src: NodeId,
        rng: &mut SmallRng,
    ) -> Option<NodeId> {
        let mesh = mesh.into();
        let n = mesh.num_nodes() as u16;
        let c = mesh.coord(src);
        let dst = match self {
            TrafficPattern::UniformRandom => {
                let mut d = NodeId(rng.gen_range(0..n));
                while d == src {
                    d = NodeId(rng.gen_range(0..n));
                }
                d
            }
            TrafficPattern::Transpose => {
                let (w, h) = (mesh.width(), mesh.height());
                // Clamp for non-square meshes.
                mesh.node_at(c.y.min(w - 1), c.x.min(h - 1))
            }
            TrafficPattern::BitComplement => NodeId(n - 1 - src.0),
            TrafficPattern::Tornado => {
                let w = mesh.width();
                mesh.node_at((c.x + w.div_ceil(2)) % w, c.y)
            }
            TrafficPattern::Hotspot { hotspot, fraction } => {
                if rng.gen_bool(fraction.clamp(0.0, 1.0)) && hotspot != src {
                    hotspot
                } else {
                    let mut d = NodeId(rng.gen_range(0..n));
                    while d == src {
                        d = NodeId(rng.gen_range(0..n));
                    }
                    d
                }
            }
            TrafficPattern::NearestNeighbor => {
                let w = mesh.width();
                mesh.node_at((c.x + 1) % w, c.y)
            }
        };
        (dst != src).then_some(dst)
    }
}

/// A Bernoulli-injection synthetic source: each node independently offers
/// a packet with probability `injection_rate` per cycle, with destinations
/// drawn from a [`TrafficPattern`].
///
/// # Example
///
/// ```
/// use noc_sim::topology::Mesh;
/// use noc_sim::traffic::{SyntheticSource, TrafficPattern, TrafficSource};
///
/// let mesh = Mesh::new(8, 8);
/// let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.02, 7);
/// let mut offered = 0;
/// for cycle in 0..1000 {
///     src.generate(cycle, &mut |_, _| offered += 1);
/// }
/// // ~0.02 × 64 × 1000 = ~1280 packets.
/// assert!((800..1800).contains(&offered));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    mesh: Topo,
    pattern: TrafficPattern,
    injection_rate: f64,
    rng: SmallRng,
}

impl SyntheticSource {
    /// Creates a source with per-node, per-cycle packet-injection
    /// probability `injection_rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= injection_rate <= 1.0`.
    pub fn new(
        mesh: impl Into<Topo>,
        pattern: TrafficPattern,
        injection_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&injection_rate),
            "injection rate must be a probability"
        );
        Self {
            mesh: mesh.into(),
            pattern,
            injection_rate,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The spatial pattern in use.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// The per-node injection probability.
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }
}

impl TrafficSource for SyntheticSource {
    fn generate(&mut self, _cycle: u64, offer: &mut dyn FnMut(NodeId, NodeId)) {
        for src in self.mesh.nodes() {
            if self.rng.gen_bool(self.injection_rate) {
                if let Some(dst) = self.pattern.destination(self.mesh, src, &mut self.rng) {
                    offer(src, dst);
                }
            }
        }
    }
}

/// A source that offers nothing — useful for drain phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentSource;

impl TrafficSource for SilentSource {
    fn generate(&mut self, _cycle: u64, _offer: &mut dyn FnMut(NodeId, NodeId)) {}

    fn is_exhausted(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn uniform_never_targets_self() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        for src in mesh.nodes() {
            for _ in 0..20 {
                let d = TrafficPattern::UniformRandom
                    .destination(mesh, src, &mut r)
                    .expect("uniform always finds a destination");
                assert_ne!(d, src);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        let src = mesh.node_at(2, 5);
        let dst = TrafficPattern::Transpose
            .destination(mesh, src, &mut r)
            .expect("off-diagonal");
        assert_eq!(mesh.coord(dst).x, 5);
        assert_eq!(mesh.coord(dst).y, 2);
        // Diagonal nodes map to themselves and are skipped.
        assert_eq!(
            TrafficPattern::Transpose.destination(mesh, mesh.node_at(3, 3), &mut r),
            None
        );
    }

    #[test]
    fn bit_complement_mirrors_index() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        let d = TrafficPattern::BitComplement
            .destination(mesh, NodeId(0), &mut r)
            .expect("0 != 63");
        assert_eq!(d, NodeId(63));
    }

    #[test]
    fn tornado_shifts_half_width() {
        let mesh = Mesh::new(8, 8);
        let mut r = rng();
        let d = TrafficPattern::Tornado
            .destination(mesh, mesh.node_at(1, 3), &mut r)
            .expect("moves");
        assert_eq!(mesh.coord(d).x, 5);
        assert_eq!(mesh.coord(d).y, 3);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mesh = Mesh::new(8, 8);
        let hot = mesh.node_at(4, 4);
        let mut r = rng();
        let pattern = TrafficPattern::Hotspot {
            hotspot: hot,
            fraction: 0.8,
        };
        let mut hits = 0;
        let trials = 1000;
        for _ in 0..trials {
            if pattern.destination(mesh, NodeId(0), &mut r) == Some(hot) {
                hits += 1;
            }
        }
        assert!(hits > trials / 2, "hotspot got only {hits}/{trials}");
    }

    #[test]
    fn nearest_neighbor_wraps_row() {
        let mesh = Mesh::new(4, 4);
        let mut r = rng();
        let d = TrafficPattern::NearestNeighbor
            .destination(mesh, mesh.node_at(3, 2), &mut r)
            .expect("wraps");
        assert_eq!(d, mesh.node_at(0, 2));
    }

    #[test]
    fn synthetic_rate_statistics() {
        let mesh = Mesh::new(8, 8);
        let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.05, 99);
        let mut offered = 0u64;
        for cycle in 0..2000 {
            src.generate(cycle, &mut |_, _| offered += 1);
        }
        let expected = 0.05 * 64.0 * 2000.0;
        let ratio = offered as f64 / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "offered {offered}, expected ≈{expected}"
        );
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let mesh = Mesh::new(4, 4);
        let collect = |seed| {
            let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.1, seed);
            let mut v = Vec::new();
            for cycle in 0..200 {
                src.generate(cycle, &mut |s, d| v.push((s, d)));
            }
            v
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn silent_source_offers_nothing() {
        let mut s = SilentSource;
        let mut count = 0;
        s.generate(0, &mut |_, _| count += 1);
        assert_eq!(count, 0);
        assert!(s.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_injection_rate_panics() {
        let _ = SyntheticSource::new(Mesh::new(2, 2), TrafficPattern::UniformRandom, 1.5, 0);
    }
}
