//! Statistics: latency distributions, network-wide counters, per-router
//! epoch features, and per-router energy event counters.
//!
//! Three kinds of accounting coexist:
//!
//! * [`NetworkStats`] — cumulative network-wide results (packets, latency,
//!   retransmissions) used for the paper's figures.
//! * [`RouterEpochStats`] — per-router counters reset every control epoch
//!   (1 000 cycles in the paper); these are the raw material of the RL
//!   agent's state features and reward.
//! * [`EventCounters`] — per-router micro-architectural event counts
//!   (buffer accesses, crossbar traversals, link traversals, ECC/CRC
//!   operations…) consumed by the ORION-style power model.

use crate::topology::{MAX_PORTS, NUM_PORTS};
use serde::{Deserialize, Serialize};

/// Streaming latency statistics with a fixed-bucket histogram.
///
/// # Example
///
/// ```
/// use noc_sim::stats::LatencyStats;
///
/// let mut lat = LatencyStats::new();
/// lat.record(10);
/// lat.record(30);
/// assert_eq!(lat.count(), 2);
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.max(), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Bucket `i` counts samples in `[8i, 8(i+1))`; the last bucket is
    /// open-ended.
    histogram: Vec<u64>,
}

/// Histogram bucket width in cycles.
pub const LATENCY_BUCKET_WIDTH: u64 = 8;
/// Number of histogram buckets (last one open-ended).
pub const LATENCY_BUCKETS: usize = 128;

impl LatencyStats {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            histogram: vec![0; LATENCY_BUCKETS],
        }
    }

    /// Records one latency sample (in cycles).
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = ((latency / LATENCY_BUCKET_WIDTH) as usize).min(LATENCY_BUCKETS - 1);
        self.histogram[bucket] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (0.0..=1.0) from the histogram; the returned
    /// value is the upper edge of the bucket containing the percentile.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 + 1) * LATENCY_BUCKET_WIDTH;
            }
        }
        self.max
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
    }

    /// The raw histogram buckets.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Cumulative network-wide results.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Data packets offered by the workload (first attempts only).
    pub packets_injected: u64,
    /// Data packets accepted intact at their destination.
    pub packets_delivered: u64,
    /// Data flits accepted at destinations (including retransmissions).
    pub flits_delivered: u64,
    /// Packets that failed the end-to-end CRC check at ejection.
    pub packets_failed_crc: u64,
    /// Full-packet source retransmissions triggered by CRC failures.
    pub packet_retransmissions: u64,
    /// Hop-level flit retransmissions triggered by NACKs.
    pub flit_retransmissions: u64,
    /// Pre-retransmission copies that were actually used (original flit
    /// rejected, copy accepted).
    pub pre_retransmit_hits: u64,
    /// Hop-level NACK signals raised.
    pub hop_nacks: u64,
    /// Flits corrected in place by link SECDED decoders.
    pub ecc_corrections: u64,
    /// Control (retransmit-request) packets injected.
    pub control_packets: u64,
    /// Packets accepted although their payload was silently corrupted
    /// (multi-bit escapes past all checks); should be ~0.
    pub silent_corruptions: u64,
    /// End-to-end packet latency (injection to full ejection, across
    /// retransmissions).
    pub latency: LatencyStats,
    /// Cycle of the most recent packet delivery (makespan probe).
    pub last_delivery_cycle: u64,
    /// Hard-fault events applied (links/routers that died permanently).
    pub hard_fault_events: u64,
    /// Fault-adaptive route-table recomputations (one per fault batch).
    pub reroute_events: u64,
    /// Ordered live node pairs with no route on the surviving topology
    /// (a gauge: the value after the most recent reroute).
    pub unreachable_pairs: u64,
    /// Data packets lost to hard faults: a flit died with a link/router,
    /// the source or destination died, or the destination became
    /// unreachable mid-flight. Counted once per packet.
    pub packets_lost_hard_fault: u64,
    /// Data packets refused at injection because source and destination
    /// were already mutually unreachable.
    pub packets_refused_unreachable: u64,
}

impl NetworkStats {
    /// Total retransmission traffic: hop-level flit retransmissions plus
    /// full-packet source retransmissions expressed in packets.
    ///
    /// This is the quantity plotted in the paper's Fig. 6.
    pub fn retransmitted_packets_equivalent(&self, flits_per_packet: u8) -> f64 {
        self.packet_retransmissions as f64
            + self.flit_retransmissions as f64 / f64::from(flits_per_packet.max(1))
    }

    /// Fraction of injected packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_injected == 0 {
            0.0
        } else {
            self.packets_delivered as f64 / self.packets_injected as f64
        }
    }
}

/// Per-router, per-epoch counters: the observable state of the RL agent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterEpochStats {
    /// Cycles elapsed in the epoch.
    pub cycles: u64,
    /// Flits received per input port (trailing entries unused on
    /// topologies with fewer than [`MAX_PORTS`] ports).
    pub flits_in: [u64; MAX_PORTS],
    /// Flits sent per output port.
    pub flits_out: [u64; MAX_PORTS],
    /// Sum over cycles of the number of occupied input VCs.
    pub occupied_vc_cycles: u64,
    /// NACKs received (this router's transmissions were rejected
    /// downstream).
    pub nacks_in: u64,
    /// NACKs sent (this router rejected received flits).
    pub nacks_out: u64,
    /// Sum of end-to-end latencies of packets whose path traversed this
    /// router.
    pub latency_sum: u64,
    /// Number of such packets.
    pub latency_count: u64,
    /// Committed local work: first-attempt flit injections plus accepted
    /// ejections. Unlike `flits_in[Local]`, retransmission attempts do
    /// not count — this drives the core-activity power proxy (cores do
    /// not re-execute when the NoC retries).
    pub core_activity_flits: u64,
}

impl RouterEpochStats {
    /// Accumulates one cycle of occupancy accounting.
    ///
    /// `occupied_vcs` is the router's incrementally maintained live
    /// input-VC count — the sampler adds it straight in rather than
    /// rescanning every VC of every router each cycle.
    #[inline]
    pub fn sample_cycle(&mut self, occupied_vcs: u64) {
        self.cycles += 1;
        self.occupied_vc_cycles += occupied_vcs;
    }

    /// Mean input-port utilization in flits/cycle.
    ///
    /// Normalized by the 2D-mesh port count ([`NUM_PORTS`] = 5)
    /// regardless of topology so the RL feature scale — and every
    /// 2D-mesh golden fixture — is unchanged by the topology zoo;
    /// higher-radix routers can legitimately exceed 1.0.
    pub fn mean_input_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let total: u64 = self.flits_in.iter().sum();
        total as f64 / (self.cycles as f64 * NUM_PORTS as f64)
    }

    /// Mean output-port utilization in flits/cycle.
    pub fn mean_output_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let total: u64 = self.flits_out.iter().sum();
        total as f64 / (self.cycles as f64 * NUM_PORTS as f64)
    }

    /// Mean number of occupied input VCs per cycle.
    pub fn mean_buffer_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupied_vc_cycles as f64 / self.cycles as f64
        }
    }

    /// NACKs received per transmitted flit (input NACK rate feature).
    pub fn input_nack_rate(&self) -> f64 {
        let sent: u64 = self.flits_out.iter().sum();
        if sent == 0 {
            0.0
        } else {
            self.nacks_in as f64 / sent as f64
        }
    }

    /// NACKs issued per received flit (output NACK rate feature).
    pub fn output_nack_rate(&self) -> f64 {
        let recv: u64 = self.flits_in.iter().sum();
        if recv == 0 {
            0.0
        } else {
            self.nacks_out as f64 / recv as f64
        }
    }

    /// Mean end-to-end latency of packets that traversed this router, or
    /// `fallback` when no packet finished this epoch.
    pub fn mean_traversal_latency(&self, fallback: f64) -> f64 {
        if self.latency_count == 0 {
            fallback
        } else {
            self.latency_sum as f64 / self.latency_count as f64
        }
    }

    /// Clears all counters for the next epoch.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Per-router micro-architectural event counts for the power model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounters {
    /// Flits written into input VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of input VC buffers.
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub crossbar_traversals: u64,
    /// Switch-allocation grants.
    pub sa_grants: u64,
    /// Virtual-channel allocations.
    pub va_allocations: u64,
    /// Flit link traversals per output port (pre-retransmission copies
    /// included).
    pub link_traversals: [u64; MAX_PORTS],
    /// CRC encode operations (source injection).
    pub crc_encodes: u64,
    /// CRC check operations (destination ejection).
    pub crc_checks: u64,
    /// SECDED encode operations (ECC-enabled link transmissions).
    pub ecc_encodes: u64,
    /// SECDED decode operations (ECC-enabled link receptions).
    pub ecc_decodes: u64,
    /// ACK/NACK side-band signals sent.
    pub ack_signals: u64,
    /// Flits re-sent from the ARQ retransmit buffer.
    pub retransmit_sends: u64,
    /// Retransmit-buffer writes (copies stored on ECC links).
    pub retransmit_buffer_writes: u64,
}

impl EventCounters {
    /// Total link traversals over all ports.
    pub fn total_link_traversals(&self) -> u64 {
        self.link_traversals.iter().sum()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &EventCounters) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_traversals += other.crossbar_traversals;
        self.sa_grants += other.sa_grants;
        self.va_allocations += other.va_allocations;
        for (a, b) in self.link_traversals.iter_mut().zip(&other.link_traversals) {
            *a += b;
        }
        self.crc_encodes += other.crc_encodes;
        self.crc_checks += other.crc_checks;
        self.ecc_encodes += other.ecc_encodes;
        self.ecc_decodes += other.ecc_decodes;
        self.ack_signals += other.ack_signals;
        self.retransmit_sends += other.retransmit_sends;
        self.retransmit_buffer_writes += other.retransmit_buffer_writes;
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basic() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        s.record(5);
        s.record(15);
        s.record(100);
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 120);
        assert_eq!(s.mean(), 40.0);
        assert_eq!(s.min(), 5);
        assert_eq!(s.max(), 100);
    }

    #[test]
    fn latency_percentile_monotone() {
        let mut s = LatencyStats::new();
        for i in 0..100 {
            s.record(i);
        }
        assert!(s.percentile(0.5) <= s.percentile(0.9));
        assert!(s.percentile(0.9) <= s.percentile(1.0).max(s.max()));
    }

    #[test]
    fn latency_merge_matches_combined_recording() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        let mut both = LatencyStats::new();
        for v in [1u64, 9, 17, 300] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 8, 1000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn latency_histogram_open_ended_bucket() {
        let mut s = LatencyStats::new();
        s.record(1_000_000);
        assert_eq!(s.histogram()[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn epoch_stats_utilizations() {
        let e = RouterEpochStats {
            cycles: 100,
            flits_in: [10, 20, 0, 0, 20, 0, 0],
            flits_out: [5, 5, 5, 5, 5, 0, 0],
            ..RouterEpochStats::default()
        };
        assert!((e.mean_input_utilization() - 0.1).abs() < 1e-12);
        assert!((e.mean_output_utilization() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn epoch_stats_nack_rates() {
        let e = RouterEpochStats {
            flits_out: [10, 10, 10, 10, 10, 0, 0],
            flits_in: [25, 25, 0, 0, 0, 0, 0],
            nacks_in: 5,
            nacks_out: 10,
            ..RouterEpochStats::default()
        };
        assert!((e.input_nack_rate() - 0.1).abs() < 1e-12);
        assert!((e.output_nack_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn epoch_stats_zero_cycles_safe() {
        let e = RouterEpochStats::default();
        assert_eq!(e.mean_input_utilization(), 0.0);
        assert_eq!(e.mean_buffer_occupancy(), 0.0);
        assert_eq!(e.input_nack_rate(), 0.0);
        assert_eq!(e.mean_traversal_latency(42.0), 42.0);
    }

    #[test]
    fn epoch_stats_reset_clears() {
        let mut e = RouterEpochStats {
            cycles: 10,
            nacks_in: 3,
            ..Default::default()
        };
        e.reset();
        assert_eq!(e, RouterEpochStats::default());
    }

    #[test]
    fn network_stats_retransmission_equivalent() {
        let stats = NetworkStats {
            packet_retransmissions: 10,
            flit_retransmissions: 8,
            ..Default::default()
        };
        assert!((stats.retransmitted_packets_equivalent(4) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn network_stats_delivery_ratio() {
        let stats = NetworkStats {
            packets_injected: 100,
            packets_delivered: 97,
            ..Default::default()
        };
        assert!((stats.delivery_ratio() - 0.97).abs() < 1e-12);
        assert_eq!(NetworkStats::default().delivery_ratio(), 0.0);
    }

    #[test]
    fn event_counters_merge_and_total() {
        let mut a = EventCounters {
            buffer_writes: 1,
            link_traversals: [1, 2, 3, 4, 5, 0, 0],
            ..Default::default()
        };
        let b = EventCounters {
            buffer_writes: 2,
            ecc_encodes: 7,
            link_traversals: [5, 4, 3, 2, 1, 0, 0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.buffer_writes, 3);
        assert_eq!(a.ecc_encodes, 7);
        assert_eq!(a.total_link_traversals(), 30);
        a.reset();
        assert_eq!(a, EventCounters::default());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mean_within_min_max(samples in proptest::collection::vec(0u64..100_000, 1..100)) {
            let mut s = LatencyStats::new();
            for &v in &samples {
                s.record(v);
            }
            prop_assert!(s.mean() >= s.min() as f64);
            prop_assert!(s.mean() <= s.max() as f64);
            prop_assert_eq!(s.count(), samples.len() as u64);
        }

        #[test]
        fn histogram_total_equals_count(samples in proptest::collection::vec(0u64..5_000, 0..200)) {
            let mut s = LatencyStats::new();
            for &v in &samples {
                s.record(v);
            }
            let total: u64 = s.histogram().iter().sum();
            prop_assert_eq!(total, s.count());
        }
    }
}
