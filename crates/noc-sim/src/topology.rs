//! Topology types, re-exported from the `noc-topo` crate.
//!
//! The zoo — [`Mesh`], [`Torus`], [`FoldedTorus`], [`Mesh3d`], unified
//! behind the [`Topology`] trait and the [`Topo`] enum — lives in its
//! own crate so that fault-schedule tooling can speak topologies
//! without depending on the simulator. This module preserves the
//! historical `noc_sim::topology::*` paths.

pub use noc_topo::{
    Coord, Direction, FoldedTorus, LinkId, Mesh, Mesh3d, NeighborTable, NodeId, Topo, Topology,
    Torus, VcClass, MAX_PORTS, NUM_PORTS,
};
