//! Mesh topology: node identifiers, coordinates, port directions, and
//! link identifiers.
//!
//! The simulator models a k×m 2D mesh (the paper evaluates 8×8). Every
//! router has five ports: the four compass directions plus the `Local`
//! port that connects to the attached processing core.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of ports on a mesh router (N, E, S, W, Local).
pub const NUM_PORTS: usize = 5;

/// Identifies one router (equivalently, one core/tile) in the mesh.
///
/// Node indices are row-major: `index = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An (x, y) position in the mesh, with the origin at the north-west
/// corner (x grows east, y grows south).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column, 0-based.
    pub x: u16,
    /// Row, 0-based.
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A router port direction. `Local` is the injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Towards smaller `y`.
    North = 0,
    /// Towards larger `x`.
    East = 1,
    /// Towards larger `y`.
    South = 2,
    /// Towards smaller `x`.
    West = 3,
    /// The attached processing core.
    Local = 4,
}

impl Direction {
    /// All five port directions, in port-index order.
    pub const ALL: [Direction; NUM_PORTS] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Local,
    ];

    /// The four inter-router directions (everything except `Local`).
    pub const COMPASS: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The port index of this direction (0..=4).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a direction from a port index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_PORTS`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The direction a flit *arrives from* when sent in this direction
    /// (e.g. a flit sent `East` arrives on the neighbor's `West` port).
    ///
    /// # Panics
    ///
    /// Panics for `Local`, which has no opposite.
    pub fn opposite(self) -> Self {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => panic!("Local port has no opposite direction"),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// Identifies one *output link*: the channel leaving router `src` in
/// direction `dir`.
///
/// `dir == Local` identifies the ejection channel into the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId {
    /// The upstream (sending) router.
    pub src: NodeId,
    /// The output direction at `src`.
    pub dir: Direction,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.src, self.dir)
    }
}

/// A 2D mesh topology.
///
/// # Example
///
/// ```
/// use noc_sim::topology::{Mesh, Direction, NodeId};
///
/// let mesh = Mesh::new(8, 8);
/// assert_eq!(mesh.num_nodes(), 64);
/// let origin = mesh.node_at(0, 0);
/// assert_eq!(mesh.neighbor(origin, Direction::East), Some(mesh.node_at(1, 0)));
/// assert_eq!(mesh.neighbor(origin, Direction::North), None); // edge of chip
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32,
            "mesh too large for u16 node ids"
        );
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of routers.
    pub fn num_nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The node at position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "coordinate out of mesh");
        NodeId(y * self.width + x)
    }

    /// The coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes(), "node out of mesh");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// The neighbor of `node` in direction `dir`, or `None` at a mesh
    /// edge (or when `dir` is `Local`).
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let Coord { x, y } = self.coord(node);
        let (nx, ny) = match dir {
            Direction::North => (x, y.checked_sub(1)?),
            Direction::South => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::West => (x.checked_sub(1)?, y),
            Direction::Local => return None,
        };
        if nx < self.width && ny < self.height {
            Some(self.node_at(nx, ny))
        } else {
            None
        }
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }

    /// Iterates over all inter-router output links (`Local` excluded).
    pub fn links(self) -> impl Iterator<Item = LinkId> {
        self.nodes().flat_map(move |n| {
            Direction::COMPASS
                .into_iter()
                .filter(move |&d| self.neighbor(n, d).is_some())
                .map(move |d| LinkId { src: n, dir: d })
        })
    }

    /// Manhattan distance between two nodes (the X-Y hop count).
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }
}

/// Precomputed `node × direction → neighbor` lookup.
///
/// [`Mesh::neighbor`] re-derives coordinates (two divisions) on every
/// call; the simulator resolves a link endpoint several times per flit
/// per hop, so the network builds this dense table once and indexes it
/// on the hot path. `table[node][port]` equals
/// `mesh.neighbor(node, Direction::from_index(port))` for every pair.
#[derive(Debug, Clone)]
pub struct NeighborTable {
    table: Vec<[Option<NodeId>; NUM_PORTS]>,
}

impl NeighborTable {
    /// Builds the table for `mesh` (`num_nodes × NUM_PORTS` entries).
    pub fn new(mesh: Mesh) -> Self {
        let table = mesh
            .nodes()
            .map(|n| {
                let mut row = [None; NUM_PORTS];
                for dir in Direction::ALL {
                    row[dir.index()] = mesh.neighbor(n, dir);
                }
                row
            })
            .collect();
        Self { table }
    }

    /// The neighbor of `node` in direction `dir`; `None` at a mesh edge
    /// or for `Local`. Identical to [`Mesh::neighbor`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh the table was built for.
    #[inline]
    pub fn get(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.table[node.index()][dir.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let mesh = Mesh::new(8, 8);
        for node in mesh.nodes() {
            let c = mesh.coord(node);
            assert_eq!(mesh.node_at(c.x, c.y), node);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mesh = Mesh::new(4, 6);
        for node in mesh.nodes() {
            for dir in Direction::COMPASS {
                if let Some(n) = mesh.neighbor(node, dir) {
                    assert_eq!(mesh.neighbor(n, dir.opposite()), Some(node));
                }
            }
        }
    }

    #[test]
    fn corner_nodes_have_two_neighbors() {
        let mesh = Mesh::new(8, 8);
        let corners = [
            mesh.node_at(0, 0),
            mesh.node_at(7, 0),
            mesh.node_at(0, 7),
            mesh.node_at(7, 7),
        ];
        for c in corners {
            let n = Direction::COMPASS
                .into_iter()
                .filter(|&d| mesh.neighbor(c, d).is_some())
                .count();
            assert_eq!(n, 2);
        }
    }

    #[test]
    fn interior_nodes_have_four_neighbors() {
        let mesh = Mesh::new(8, 8);
        let n = mesh.node_at(3, 4);
        let count = Direction::COMPASS
            .into_iter()
            .filter(|&d| mesh.neighbor(n, d).is_some())
            .count();
        assert_eq!(count, 4);
    }

    #[test]
    fn link_count_matches_formula() {
        // Directed inter-router links in a w×h mesh: 2*(w-1)*h + 2*w*(h-1).
        let mesh = Mesh::new(8, 8);
        assert_eq!(mesh.links().count(), 2 * 7 * 8 + 2 * 8 * 7);
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(
            mesh.hop_distance(mesh.node_at(0, 0), mesh.node_at(7, 7)),
            14
        );
        assert_eq!(mesh.hop_distance(mesh.node_at(3, 3), mesh.node_at(3, 3)), 0);
        assert_eq!(mesh.hop_distance(mesh.node_at(2, 5), mesh.node_at(4, 1)), 6);
    }

    #[test]
    fn direction_index_round_trip() {
        for dir in Direction::ALL {
            assert_eq!(Direction::from_index(dir.index()), dir);
        }
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_opposite_panics() {
        let _ = Direction::Local.opposite();
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_mesh_panics() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn neighbor_local_is_none() {
        let mesh = Mesh::new(2, 2);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::Local), None);
    }

    #[test]
    fn neighbor_table_matches_mesh() {
        for (w, h) in [(1, 1), (1, 5), (4, 4), (8, 3)] {
            let mesh = Mesh::new(w, h);
            let table = NeighborTable::new(mesh);
            for node in mesh.nodes() {
                for dir in Direction::ALL {
                    assert_eq!(
                        table.get(node, dir),
                        mesh.neighbor(node, dir),
                        "{w}x{h} mesh, {node} {dir}"
                    );
                }
            }
        }
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Direction::North.to_string(), "N");
        let link = LinkId {
            src: NodeId(1),
            dir: Direction::East,
        };
        assert_eq!(link.to_string(), "n1→E");
        assert_eq!(Coord { x: 1, y: 2 }.to_string(), "(1, 2)");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_mesh_round_trips_nodes(w in 1u16..16, h in 1u16..16) {
            let mesh = Mesh::new(w, h);
            for node in mesh.nodes() {
                let c = mesh.coord(node);
                prop_assert_eq!(mesh.node_at(c.x, c.y), node);
            }
        }

        #[test]
        fn hop_distance_symmetric(w in 1u16..12, h in 1u16..12, a in 0u16..144, b in 0u16..144) {
            let mesh = Mesh::new(w, h);
            let n = mesh.num_nodes() as u16;
            let a = NodeId(a % n);
            let b = NodeId(b % n);
            prop_assert_eq!(mesh.hop_distance(a, b), mesh.hop_distance(b, a));
        }

        #[test]
        fn hop_distance_triangle_inequality(a in 0u16..64, b in 0u16..64, c in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
            prop_assert!(
                mesh.hop_distance(a, c) <= mesh.hop_distance(a, b) + mesh.hop_distance(b, c)
            );
        }
    }
}
