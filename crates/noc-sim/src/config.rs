//! Simulator configuration.
//!
//! [`NocConfig::default`] reproduces Table II of the paper: an 8×8 2D mesh
//! with X-Y routing, 4-stage routers, 4 virtual channels per port, and
//! 4-flit packets of 128 bits per flit at 1.0 V / 2.0 GHz.

use crate::topology::Topo;
use serde::{Deserialize, Serialize};

/// Static parameters of a simulated network.
///
/// Construct with [`NocConfig::builder`] or use [`NocConfig::default`] for
/// the paper's Table II configuration.
///
/// # Example
///
/// ```
/// use noc_sim::config::NocConfig;
///
/// let config = NocConfig::builder()
///     .mesh(4, 4)
///     .vcs_per_port(2)
///     .vc_depth(8)
///     .build();
/// assert_eq!(config.mesh.num_nodes(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Network topology (default 8×8 2D mesh). The field keeps its
    /// historical name; it carries any member of the topology zoo.
    pub mesh: Topo,
    /// Virtual channels per input port (default 4).
    pub vcs_per_port: u8,
    /// Buffer depth per virtual channel, in flits (default 4).
    pub vc_depth: u8,
    /// Flits per data packet (default 4, 128 bits each).
    pub flits_per_packet: u8,
    /// Link traversal latency in cycles (default 1).
    pub link_latency: u32,
    /// One-way latency of the side-band ACK/NACK wires (default 1).
    pub ack_latency: u32,
    /// Capacity of each output port's ARQ retransmission buffer, in flits
    /// (default 8 — the paper's added "output flit buffers").
    pub retransmit_buffer_depth: usize,
    /// Supply voltage in volts (default 1.0; feeds the power model).
    pub voltage: f64,
    /// Clock frequency in Hz (default 2.0 GHz).
    pub frequency: f64,
}

impl NocConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> NocConfigBuilder {
        NocConfigBuilder {
            config: Self::default(),
        }
    }

    /// Clock period in seconds.
    pub fn clock_period(&self) -> f64 {
        1.0 / self.frequency
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_per_port == 0 {
            return Err(ConfigError("vcs_per_port must be positive"));
        }
        if self.vcs_per_port < self.mesh.min_vcs() {
            return Err(ConfigError(
                "vcs_per_port below the topology's deadlock-avoidance minimum \
                 (tori need at least 2 VCs for the date-line split)",
            ));
        }
        if self.vc_depth == 0 {
            return Err(ConfigError("vc_depth must be positive"));
        }
        if self.flits_per_packet == 0 {
            return Err(ConfigError("flits_per_packet must be positive"));
        }
        if self.link_latency == 0 {
            return Err(ConfigError("link_latency must be positive"));
        }
        if self.retransmit_buffer_depth == 0 {
            return Err(ConfigError("retransmit_buffer_depth must be positive"));
        }
        if self.voltage <= 0.0 || self.voltage.is_nan() {
            return Err(ConfigError("voltage must be positive"));
        }
        if self.frequency <= 0.0 || self.frequency.is_nan() {
            return Err(ConfigError("frequency must be positive"));
        }
        Ok(())
    }
}

impl Default for NocConfig {
    /// The paper's Table II parameters.
    fn default() -> Self {
        Self {
            mesh: Topo::mesh(8, 8),
            vcs_per_port: 4,
            vc_depth: 4,
            flits_per_packet: 4,
            link_latency: 1,
            ack_latency: 1,
            retransmit_buffer_depth: 8,
            voltage: 1.0,
            frequency: 2.0e9,
        }
    }
}

/// A configuration constraint violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError(&'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid NoC configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`NocConfig`].
#[derive(Debug, Clone)]
pub struct NocConfigBuilder {
    config: NocConfig,
}

impl NocConfigBuilder {
    /// Sets a `width × height` 2D mesh topology.
    pub fn mesh(mut self, width: u16, height: u16) -> Self {
        self.config.mesh = Topo::mesh(width, height);
        self
    }

    /// Sets the topology to any member of the zoo.
    pub fn topology(mut self, topo: impl Into<Topo>) -> Self {
        self.config.mesh = topo.into();
        self
    }

    /// Sets the number of virtual channels per port.
    pub fn vcs_per_port(mut self, vcs: u8) -> Self {
        self.config.vcs_per_port = vcs;
        self
    }

    /// Sets the per-VC buffer depth in flits.
    pub fn vc_depth(mut self, depth: u8) -> Self {
        self.config.vc_depth = depth;
        self
    }

    /// Sets the number of flits per data packet.
    pub fn flits_per_packet(mut self, flits: u8) -> Self {
        self.config.flits_per_packet = flits;
        self
    }

    /// Sets the link traversal latency in cycles.
    pub fn link_latency(mut self, cycles: u32) -> Self {
        self.config.link_latency = cycles;
        self
    }

    /// Sets the ACK/NACK side-band latency in cycles.
    pub fn ack_latency(mut self, cycles: u32) -> Self {
        self.config.ack_latency = cycles;
        self
    }

    /// Sets the ARQ retransmission buffer depth per output port.
    pub fn retransmit_buffer_depth(mut self, flits: usize) -> Self {
        self.config.retransmit_buffer_depth = flits;
        self
    }

    /// Sets the supply voltage in volts.
    pub fn voltage(mut self, volts: f64) -> Self {
        self.config.voltage = volts;
        self
    }

    /// Sets the clock frequency in Hz.
    pub fn frequency(mut self, hz: f64) -> Self {
        self.config.frequency = hz;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`NocConfig::validate`]).
    pub fn build(self) -> NocConfig {
        if let Err(e) = self.config.validate() {
            panic!("{e}");
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = NocConfig::default();
        assert_eq!(c.mesh.width(), 8);
        assert_eq!(c.mesh.height(), 8);
        assert_eq!(c.vcs_per_port, 4);
        assert_eq!(c.flits_per_packet, 4);
        assert_eq!(c.voltage, 1.0);
        assert_eq!(c.frequency, 2.0e9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn clock_period_inverse_of_frequency() {
        let c = NocConfig::default();
        assert!((c.clock_period() - 0.5e-9).abs() < 1e-18);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = NocConfig::builder()
            .mesh(4, 2)
            .vcs_per_port(2)
            .vc_depth(8)
            .flits_per_packet(2)
            .link_latency(2)
            .ack_latency(3)
            .retransmit_buffer_depth(16)
            .voltage(0.9)
            .frequency(1.0e9)
            .build();
        assert_eq!(c.mesh.num_nodes(), 8);
        assert_eq!(c.vcs_per_port, 2);
        assert_eq!(c.vc_depth, 8);
        assert_eq!(c.flits_per_packet, 2);
        assert_eq!(c.link_latency, 2);
        assert_eq!(c.ack_latency, 3);
        assert_eq!(c.retransmit_buffer_depth, 16);
        assert_eq!(c.voltage, 0.9);
        assert_eq!(c.frequency, 1.0e9);
    }

    #[test]
    #[should_panic(expected = "vcs_per_port")]
    fn zero_vcs_panics() {
        let _ = NocConfig::builder().vcs_per_port(0).build();
    }

    #[test]
    fn topology_builder_accepts_the_zoo() {
        let c = NocConfig::builder().topology(Topo::torus(16, 16)).build();
        assert_eq!(c.mesh, Topo::torus(16, 16));
        assert_eq!(c.mesh.num_nodes(), 256);
        let c = NocConfig::builder().topology(Topo::mesh3d(4, 4, 2)).build();
        assert_eq!(c.mesh.num_ports(), 7);
    }

    #[test]
    #[should_panic(expected = "deadlock-avoidance minimum")]
    fn torus_with_one_vc_panics() {
        let _ = NocConfig::builder()
            .topology(Topo::torus(4, 4))
            .vcs_per_port(1)
            .build();
    }

    #[test]
    fn mesh_with_one_vc_is_fine() {
        let c = NocConfig::builder().mesh(4, 4).vcs_per_port(1).build();
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_values() {
        let c = NocConfig {
            vc_depth: 0,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NocConfig {
            voltage: -1.0,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NocConfig {
            link_latency: 0,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_error_displays() {
        let err = NocConfig {
            vc_depth: 0,
            ..NocConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("vc_depth"));
    }
}
