//! Trace-driven workloads.
//!
//! The paper replays PARSEC application traces: streams of timestamped
//! packet-injection events. This module defines the trace format (a
//! serde-serializable event list), a [`TraceSource`] that replays one
//! through the [`TrafficSource`](crate::traffic::TrafficSource) interface,
//! and save/load helpers in a simple line-oriented text format
//! (`cycle src dst` per line) so traces can be inspected and diffed.

use crate::topology::NodeId;
use crate::traffic::TrafficSource;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufRead, Write};

/// One packet-injection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A finite, time-ordered sequence of injection events.
///
/// # Example
///
/// ```
/// use noc_sim::topology::NodeId;
/// use noc_sim::trace::{Trace, TraceEvent};
///
/// let mut trace = Trace::new();
/// trace.push(TraceEvent { cycle: 3, src: NodeId(0), dst: NodeId(5) });
/// trace.push(TraceEvent { cycle: 1, src: NodeId(2), dst: NodeId(7) });
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.events()[0].cycle, 1, "events are kept time-sorted");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Error parsing a textual trace.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Inserts an event, keeping the list sorted by cycle (stable for
    /// equal cycles).
    pub fn push(&mut self, event: TraceEvent) {
        let pos = self.events.partition_point(|e| e.cycle <= event.cycle);
        self.events.insert(pos, event);
    }

    /// Cycle of the last event, or 0 for an empty trace.
    pub fn horizon(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Writes the trace as `cycle src dst` lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn save<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for e in &self.events {
            writeln!(writer, "{} {} {}", e.cycle, e.src.0, e.dst.0)?;
        }
        Ok(())
    }

    /// Parses a trace from `cycle src dst` lines; `#`-prefixed lines and
    /// blanks are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on malformed lines and wraps I/O errors
    /// in the message.
    pub fn load<R: BufRead>(reader: R) -> Result<Self, ParseTraceError> {
        let mut trace = Trace::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| ParseTraceError {
                line: i + 1,
                message: e.to_string(),
            })?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut field = |name: &str| {
                parts
                    .next()
                    .ok_or_else(|| ParseTraceError {
                        line: i + 1,
                        message: format!("missing field {name}"),
                    })?
                    .parse::<u64>()
                    .map_err(|e| ParseTraceError {
                        line: i + 1,
                        message: format!("bad {name}: {e}"),
                    })
            };
            let cycle = field("cycle")?;
            let src = field("src")? as u16;
            let dst = field("dst")? as u16;
            trace.push(TraceEvent {
                cycle,
                src: NodeId(src),
                dst: NodeId(dst),
            });
        }
        Ok(trace)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut events: Vec<TraceEvent> = iter.into_iter().collect();
        events.sort_by_key(|e| e.cycle);
        Self { events }
    }
}

/// Replays a [`Trace`] as a [`TrafficSource`].
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: Trace,
    next: usize,
}

impl TraceSource {
    /// Creates a replay source over `trace`.
    pub fn new(trace: Trace) -> Self {
        Self { trace, next: 0 }
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }
}

impl TrafficSource for TraceSource {
    fn generate(&mut self, cycle: u64, offer: &mut dyn FnMut(NodeId, NodeId)) {
        while let Some(e) = self.trace.events().get(self.next) {
            if e.cycle > cycle {
                break;
            }
            offer(e.src, e.dst);
            self.next += 1;
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next >= self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, src: u16, dst: u16) -> TraceEvent {
        TraceEvent {
            cycle,
            src: NodeId(src),
            dst: NodeId(dst),
        }
    }

    #[test]
    fn push_keeps_time_order() {
        let mut t = Trace::new();
        t.push(ev(10, 0, 1));
        t.push(ev(5, 1, 2));
        t.push(ev(7, 2, 3));
        let cycles: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 7, 10]);
        assert_eq!(t.horizon(), 10);
    }

    #[test]
    fn save_load_round_trip() {
        let trace: Trace = [ev(1, 0, 5), ev(2, 3, 4), ev(2, 5, 0), ev(9, 7, 1)]
            .into_iter()
            .collect();
        let mut buf = Vec::new();
        trace.save(&mut buf).expect("write to vec");
        let loaded = Trace::load(buf.as_slice()).expect("parse own output");
        assert_eq!(loaded, trace);
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let text = "# header\n\n1 0 2\n# mid\n3 4 5\n";
        let t = Trace::load(text.as_bytes()).expect("valid trace");
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1], ev(3, 4, 5));
    }

    #[test]
    fn load_reports_bad_lines() {
        let err = Trace::load("1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = Trace::load("x 0 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad cycle"));
    }

    #[test]
    fn replay_respects_timestamps() {
        let trace: Trace = [ev(0, 0, 1), ev(2, 1, 2), ev(2, 2, 3), ev(5, 3, 0)]
            .into_iter()
            .collect();
        let mut src = TraceSource::new(trace);
        let mut per_cycle = Vec::new();
        for cycle in 0..6 {
            let mut n = 0;
            src.generate(cycle, &mut |_, _| n += 1);
            per_cycle.push(n);
        }
        assert_eq!(per_cycle, vec![1, 0, 2, 0, 0, 1]);
        assert!(src.is_exhausted());
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn replay_catches_up_after_gap() {
        // If generate() is first called at a late cycle, earlier events
        // are still delivered (no silent loss).
        let trace: Trace = [ev(1, 0, 1), ev(2, 1, 2)].into_iter().collect();
        let mut src = TraceSource::new(trace);
        let mut n = 0;
        src.generate(10, &mut |_, _| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn from_iterator_sorts() {
        let t: Trace = [ev(9, 0, 1), ev(1, 1, 2)].into_iter().collect();
        assert_eq!(t.events()[0].cycle, 1);
    }
}
