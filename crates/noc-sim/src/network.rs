//! The network: routers, links, event scheduling, injection/ejection, and
//! the per-cycle simulation loop.
//!
//! [`Network::step`] advances one clock cycle through six phases:
//!
//! 1. **Events** — flit arrivals (with error-control processing), credit
//!    returns, ACK/NACK processing, ejection/reassembly.
//! 2. **Injection** — one flit per node from the source queue into the
//!    local input port.
//! 3. **SA/ST** — switch allocation and traversal (priority resends
//!    first, then separable input-first/output arbitration).
//! 4. **VA** — virtual-channel allocation.
//! 5. **RC** — route computation.
//! 6. **Sampling** — per-router occupancy statistics.
//!
//! Running the phases in this order makes each pipeline stage take one
//! cycle: a flit arriving at cycle *t* computes its route at *t+1*, gets a
//! VC at *t+2*, and crosses the switch at *t+3* — the paper's 4-stage
//! router — then spends `link_latency` cycles on the wire.
//!
//! ## Hop-level ARQ ordering (go-back-N gate)
//!
//! When a flit is rejected by the downstream ECC decoder, flits of the
//! same packet may already be in flight behind it. To preserve per-VC flit
//! order the receiver *gates* the VC: every non-matching arrival is
//! auto-rejected (NACKed) until the retransmission of the rejected flit
//! arrives — classic go-back-N. The sender's port is additionally
//! suspended from the reject until its NACK is processed, so no new flit
//! can slip into the window.

use crate::config::NocConfig;
use crate::error_control::{EjectOutcome, ErrorControl, HopOutcome, TransferKind};
use crate::flit::{Flit, FlitArena, FlitRef, Packet, PacketClass, PacketId, PacketWindow};
use crate::router::{PendingRetransmit, Router, VcState};
use crate::routing::{FaultRoutes, RouteTable};
use crate::stats::{EventCounters, NetworkStats, RouterEpochStats};
use crate::topology::{Direction, LinkId, NeighborTable, NodeId, Topo, MAX_PORTS};
use crate::worklist::ActiveSet;
use noc_coding::arq::{AckKind, SequenceNumber};
use noc_coding::crc::Crc32;
use rlnoc_telemetry::{Counter, Gauge, Histogram, Telemetry, TimerHandle};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Per-cycle runtime invariant checks (child module so it can traverse
/// the private event wheel); compiled only under the `verify` feature
/// and armed by `RLNOC_VERIFY=1`.
#[cfg(feature = "verify")]
#[path = "invariants.rs"]
mod invariants;

/// Event-wheel horizon in cycles; all scheduled events must land within
/// this many cycles of the present.
const WHEEL: u64 = 64;

/// A scheduled simulation event. Flit-carrying events hold arena
/// handles, so an event is a few machine words rather than a full flit
/// body.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A flit reaches the downstream end of `link`.
    Arrival {
        link: LinkId,
        vc: u8,
        flit: FlitRef,
        seq: Option<SequenceNumber>,
        kind: TransferKind,
        /// Whether a proactive duplicate was sent one cycle behind
        /// (captured at send time; mode 2).
        pre_sent: bool,
    },
    /// A pre-retransmitted copy that was already accepted lands in the
    /// downstream buffer (one cycle after the rejected original).
    DirectDeliver {
        node: NodeId,
        in_port: Direction,
        vc: u8,
        flit: FlitRef,
    },
    /// A flit leaves through the local port into the destination core.
    Eject { node: NodeId, flit: FlitRef },
    /// A buffer credit returns to the upstream router's output port.
    Credit {
        node: NodeId,
        port: Direction,
        vc: u8,
    },
    /// An ACK/NACK side-band signal reaches the sending router.
    AckSignal {
        node: NodeId,
        port: Direction,
        seq: SequenceNumber,
        kind: AckKind,
    },
}

/// Cyclic event wheel with slot-buffer reuse: draining a slot swaps in
/// a recycled buffer instead of leaving a fresh zero-capacity `Vec`
/// behind, so steady-state event scheduling performs no allocation.
#[derive(Debug)]
struct Wheel {
    slots: Vec<Vec<Event>>,
    /// The buffer drained by the previous cycle, cleared and waiting to
    /// back the next drained slot.
    spare: Vec<Event>,
}

impl Wheel {
    fn new() -> Self {
        Self {
            slots: (0..WHEEL).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
        }
    }

    fn push(&mut self, now: u64, at: u64, event: Event) {
        assert!(at > now, "events must be scheduled in the future");
        assert!(at - now < WHEEL, "event horizon exceeded");
        self.slots[(at % WHEEL) as usize].push(event);
    }

    /// Drains the slot for `cycle`, leaving the spare buffer (with its
    /// grown capacity) in its place. Return the drained buffer via
    /// [`Wheel::recycle`] once processed.
    fn take(&mut self, cycle: u64) -> Vec<Event> {
        std::mem::replace(
            &mut self.slots[(cycle % WHEEL) as usize],
            std::mem::take(&mut self.spare),
        )
    }

    fn recycle(&mut self, mut buffer: Vec<Event>) {
        buffer.clear();
        self.spare = buffer;
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

/// Progress of a packet being injected flit-by-flit at a node.
#[derive(Debug, Clone)]
struct InjectProgress {
    packet: Packet,
    attempt: u8,
    next_flit: u8,
    vc: u8,
}

/// What fails in a [`HardFaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardFaultKind {
    /// The bidirectional channel between `node` and its neighbor in
    /// `dir` fails permanently (both directions die together — the
    /// physical wires share a bundle).
    Link {
        /// One endpoint of the failing channel.
        node: NodeId,
        /// The direction of the channel at `node` (never `Local`).
        dir: Direction,
    },
    /// The whole router (and every link attached to it) fails
    /// permanently. Its core can no longer inject or receive packets.
    Router {
        /// The failing router.
        node: NodeId,
    },
}

/// A permanent topology failure scheduled at a simulation cycle.
///
/// Applied at the start of the `step` for `cycle` — before event
/// processing — so both the production and reference simulators observe
/// the failure at exactly the same point in the phase order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardFaultEvent {
    /// Absolute cycle at which the element dies.
    pub cycle: u64,
    /// The failing element.
    pub kind: HardFaultKind,
}

/// Hard-fault bookkeeping: the pending schedule, liveness marks, the
/// fault-adaptive route table (built at the first applied event), and
/// the set of packets lost to faults ("doomed" — their surviving flits
/// evaporate on arrival instead of being forwarded).
#[derive(Debug)]
struct FaultState {
    events: Vec<HardFaultEvent>,
    next_event: usize,
    node_dead: Vec<bool>,
    /// `link_dead[node][port]`: the channel at `node` in that direction
    /// is dead. Kept symmetric with the peer's opposite entry.
    link_dead: Vec<[bool; MAX_PORTS]>,
    /// `Some` once the first fault event has been applied; the network
    /// then routes via this table instead of X-Y. Behind an `Arc` so
    /// lockstep replicate lanes sharing one fault schedule share one
    /// table (see [`SharedTables`]).
    routes: Option<Arc<FaultRoutes>>,
    /// Packets that lost at least one flit (or their source/destination
    /// router) to a hard fault. Membership-only, ordered for
    /// deterministic iteration.
    doomed: BTreeSet<PacketId>,
}

impl FaultState {
    fn new(events: Vec<HardFaultEvent>, n: usize) -> Self {
        Self {
            events,
            next_event: 0,
            node_dead: vec![false; n],
            link_dead: vec![[false; MAX_PORTS]; n],
            routes: None,
            doomed: BTreeSet::new(),
        }
    }

    /// Marks the channel `node → dir` (and its reverse) dead.
    fn kill_link(&mut self, neighbors: &NeighborTable, node: NodeId, dir: Direction) {
        self.link_dead[node.index()][dir.index()] = true;
        if let Some(peer) = neighbors.get(node, dir) {
            self.link_dead[peer.index()][dir.opposite().index()] = true;
        }
    }

    /// Records `id` as lost; returns `true` when newly recorded and the
    /// packet carries data (i.e. counts toward `packets_lost_faults`).
    fn doom(&mut self, id: PacketId, is_data: bool) -> bool {
        self.doomed.insert(id) && is_data
    }
}

/// Memo of fault-adaptive route tables, shared by lockstep replicate
/// lanes that run the *same* hard-fault schedule on the *same* mesh.
///
/// The dead-element sets after each applied event batch are a pure
/// function of the schedule (never of packet dynamics), and
/// [`FaultRoutes::compute`] is deterministic on those sets — so lanes
/// reaching the same applied-event count need the same table. The cache
/// is keyed by that count; the first lane to take a fault batch pays the
/// up*/down* recomputation and every other lane reuses the `Arc`.
///
/// Sharing one cache across networks with *different* schedules or
/// meshes would serve wrong tables; [`SharedTables`] therefore owns the
/// cache and batch construction hands one only to lanes of one
/// replicate group. Under the `verify` feature with `RLNOC_VERIFY=1`
/// every cache hit is re-derived from scratch and compared, so a
/// poisoned or mismatched entry panics instead of silently steering.
#[derive(Debug, Clone, Default)]
pub struct FaultRouteCache {
    inner: Arc<Mutex<BTreeMap<usize, Arc<FaultRoutes>>>>,
}

impl FaultRouteCache {
    /// Returns the memoized table for `applied_events`, computing and
    /// publishing it on first request.
    fn get_or_compute(
        &self,
        applied_events: usize,
        compute: impl FnOnce() -> FaultRoutes,
    ) -> Arc<FaultRoutes> {
        let mut map = self.inner.lock().expect("fault-route cache poisoned");
        if let Some(hit) = map.get(&applied_events) {
            let hit = Arc::clone(hit);
            drop(map);
            #[cfg(feature = "verify")]
            if invariants::armed() {
                assert!(
                    compute() == *hit,
                    "shared fault-route cache entry for {applied_events} applied \
                     events diverges from recomputation"
                );
            }
            return hit;
        }
        let fresh = Arc::new(compute());
        map.insert(applied_events, Arc::clone(&fresh));
        fresh
    }

    /// Test hook: plants a (presumably wrong) table under
    /// `applied_events` so corruption-injection tests can prove the
    /// armed coherence check has teeth.
    #[cfg(feature = "verify")]
    #[doc(hidden)]
    pub fn poison_for_test(&self, applied_events: usize, routes: FaultRoutes) {
        self.inner
            .lock()
            .expect("fault-route cache poisoned")
            .insert(applied_events, Arc::new(routes));
    }
}

/// Immutable lookup state that replicate lanes of a batched simulation
/// share instead of rebuilding per lane: the X-Y route table, the
/// neighbor table, and the [`FaultRouteCache`].
///
/// All lanes must run the same mesh; lanes handed the same instance must
/// additionally run the same hard-fault schedule (see
/// [`FaultRouteCache`]). Construction via [`Network::with_shared`] is
/// behaviorally identical to [`Network::new`] — the tables are the same
/// values, merely shared — so per-lane results stay byte-identical to
/// independently built networks.
#[derive(Debug, Clone)]
pub struct SharedTables {
    mesh: Topo,
    routes: Arc<RouteTable>,
    neighbors: Arc<NeighborTable>,
    fault_routes: FaultRouteCache,
}

impl SharedTables {
    /// Precomputes the shared tables for `mesh` (any topology).
    pub fn new(mesh: impl Into<Topo>) -> Self {
        let mesh = mesh.into();
        Self {
            mesh,
            routes: Arc::new(RouteTable::new(mesh)),
            neighbors: Arc::new(NeighborTable::new(mesh)),
            fault_routes: FaultRouteCache::default(),
        }
    }

    /// The topology these tables were built for.
    pub fn mesh(&self) -> Topo {
        self.mesh
    }

    /// The shared fault-adaptive route-table memo.
    pub fn fault_routes(&self) -> &FaultRouteCache {
        &self.fault_routes
    }
}

/// A cycle-accurate NoC simulation instance, generic over the
/// [`ErrorControl`] implementation that governs link protection.
///
/// # Example
///
/// ```
/// use noc_sim::config::NocConfig;
/// use noc_sim::error_control::PerfectLink;
/// use noc_sim::network::Network;
///
/// let config = NocConfig::builder().mesh(4, 4).build();
/// let mut net = Network::new(config, PerfectLink::new(), 1);
/// let mesh = net.mesh();
/// net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
/// for _ in 0..100 {
///     net.step();
/// }
/// assert_eq!(net.stats().packets_delivered, 1);
/// ```
#[derive(Debug)]
pub struct Network<E: ErrorControl> {
    config: NocConfig,
    mesh: Topo,
    protocol: E,
    routers: Vec<Router>,
    crc: Crc32,
    cycle: u64,
    wheel: Wheel,
    /// Precomputed X-Y next-hop lookup (RC stage, latency attribution).
    /// Shared (`Arc`) so batched replicate lanes build it once.
    routes: Arc<RouteTable>,
    /// Precomputed node × direction neighbor lookup (link endpoints).
    neighbors: Arc<NeighborTable>,
    /// Shared fault-adaptive route memo for batched lanes; `None` on an
    /// independently built network (each fault batch computes its own).
    fault_cache: Option<FaultRouteCache>,
    /// Slab of in-flight flit bodies; everything else moves handles.
    arena: FlitArena,
    source_queues: Vec<VecDeque<(Packet, u8)>>,
    inject_progress: Vec<Option<InjectProgress>>,
    next_inject_vc: Vec<u8>,
    /// Source store: packets awaiting confirmed delivery, with their
    /// retransmission attempt count. Dense over the in-flight id band.
    pending_packets: PacketWindow<(Packet, u8)>,
    /// Destination reassembly. The window is keyed by packet id; the
    /// inner list disambiguates end-to-end attempts (almost always one).
    reassembly: PacketWindow<Vec<ReassemblyEntry>>,
    /// Recycled flit-handle buffers for reassembly entries.
    reassembly_pool: Vec<Vec<FlitRef>>,
    /// Reused staging buffer: flit bodies of a completed packet, handed
    /// to `eject_check` and the payload-verification pass.
    eject_scratch: Vec<Flit>,
    next_packet_id: u64,
    payload_seed: u64,
    stats: NetworkStats,
    epoch: Vec<RouterEpochStats>,
    counters: Vec<EventCounters>,
    /// Hard-fault state; `None` (the default) leaves every fault-mode
    /// branch cold so zero-fault runs are bit-identical to a build
    /// without the subsystem.
    faults: Option<Box<FaultState>>,
    /// Scratch: packets doomed by the RC stage this cycle (destination
    /// became unreachable), with their data/control classification.
    rc_doomed: Vec<(PacketId, bool)>,
    /// Pipeline worklist: routers with at least one occupied input VC or
    /// a pending priority resend. Maintained incrementally at every
    /// buffer write and resend enqueue, retired in the sampling pass,
    /// rebuilt after hard-fault purges. Routers outside the set provably
    /// have no SA/VA/RC work (see the phase skip conditions).
    active: ActiveSet,
    /// Injection worklist: nodes with an open flit-by-flit injection or
    /// a non-empty source queue.
    inject_active: ActiveSet,
    /// Epoch cycles not yet flushed into the per-router records. The
    /// per-cycle `cycles` increment is uniform across routers, so the
    /// sampling pass bumps this single counter instead of touching all
    /// `n` records; [`Network::finish_epoch`] flushes before any read.
    epoch_pending_cycles: u64,
    tel: NetTelemetry,
    /// Watchdog state for the runtime invariant checker.
    #[cfg(feature = "verify")]
    verify: invariants::VerifyState,
}

/// Flits of one end-to-end transmission attempt collecting at the
/// destination.
#[derive(Debug)]
struct ReassemblyEntry {
    attempt: u8,
    flits: Vec<FlitRef>,
}

/// Pre-resolved telemetry handles for the simulation hot path. All
/// handles are inert no-ops until [`Network::set_telemetry`] installs an
/// enabled [`Telemetry`]; disabled, each site costs one branch.
#[derive(Debug, Clone, Default)]
struct NetTelemetry {
    phase_events: TimerHandle,
    phase_inject: TimerHandle,
    phase_sa_st: TimerHandle,
    phase_va: TimerHandle,
    phase_rc: TimerHandle,
    phase_sample: TimerHandle,
    hardfault_apply: TimerHandle,
    cycles: Counter,
    active_router_cycles: Counter,
    arq_nacks: Counter,
    arq_retransmits: Counter,
    buffered_flits: Histogram,
    hardfault_events: Counter,
    hardfault_reroutes: Counter,
    hardfault_packets_lost: Counter,
    hardfault_unreachable_pairs: Gauge,
}

impl NetTelemetry {
    fn resolve(telemetry: &Telemetry) -> Self {
        Self {
            phase_events: telemetry.timer("sim.phase.process_events"),
            phase_inject: telemetry.timer("sim.phase.inject"),
            phase_sa_st: telemetry.timer("sim.phase.sa_st"),
            phase_va: telemetry.timer("sim.phase.va"),
            phase_rc: telemetry.timer("sim.phase.rc"),
            phase_sample: telemetry.timer("sim.phase.sample"),
            hardfault_apply: telemetry.timer("sim.hardfault.apply"),
            cycles: telemetry.counter("sim.cycles"),
            active_router_cycles: telemetry.counter("sim.worklist.active_router_cycles"),
            arq_nacks: telemetry.counter("sim.arq.nacks"),
            arq_retransmits: telemetry.counter("sim.arq.retransmit_sends"),
            buffered_flits: telemetry.histogram("sim.router.buffered_flits"),
            hardfault_events: telemetry.counter("sim.hardfault.events"),
            hardfault_reroutes: telemetry.counter("sim.hardfault.reroutes"),
            hardfault_packets_lost: telemetry.counter("sim.hardfault.packets_lost"),
            hardfault_unreachable_pairs: telemetry.gauge("sim.hardfault.unreachable_pairs"),
        }
    }
}

impl<E: ErrorControl> Network<E> {
    /// Builds a network from `config` with the given error-control layer.
    ///
    /// `seed` determinizes packet payload contents.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NocConfig::validate`].
    pub fn new(config: NocConfig, protocol: E, seed: u64) -> Self {
        let mesh = config.mesh;
        Self::build(
            config,
            protocol,
            seed,
            Arc::new(RouteTable::new(mesh)),
            Arc::new(NeighborTable::new(mesh)),
            None,
        )
    }

    /// Like [`Network::new`], but reusing precomputed [`SharedTables`]
    /// instead of rebuilding the route/neighbor lookups — the
    /// construction path for lockstep replicate lanes. Behaviorally
    /// identical to [`Network::new`] on the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NocConfig::validate`] or `shared` was
    /// built for a different mesh.
    pub fn with_shared(config: NocConfig, protocol: E, seed: u64, shared: &SharedTables) -> Self {
        assert_eq!(
            shared.mesh, config.mesh,
            "shared tables built for a different mesh"
        );
        Self::build(
            config,
            protocol,
            seed,
            Arc::clone(&shared.routes),
            Arc::clone(&shared.neighbors),
            Some(shared.fault_routes.clone()),
        )
    }

    fn build(
        config: NocConfig,
        protocol: E,
        seed: u64,
        routes: Arc<RouteTable>,
        neighbors: Arc<NeighborTable>,
        fault_cache: Option<FaultRouteCache>,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let mesh = config.mesh;
        let n = mesh.num_nodes();
        Self {
            config,
            mesh,
            protocol,
            routers: mesh.nodes().map(|id| Router::new(id, &config)).collect(),
            crc: Crc32::new(),
            cycle: 0,
            wheel: Wheel::new(),
            routes,
            neighbors,
            fault_cache,
            arena: FlitArena::new(),
            source_queues: vec![VecDeque::new(); n],
            inject_progress: vec![None; n],
            next_inject_vc: vec![0; n],
            pending_packets: PacketWindow::new(),
            reassembly: PacketWindow::new(),
            reassembly_pool: Vec::new(),
            eject_scratch: Vec::new(),
            next_packet_id: 0,
            payload_seed: seed,
            stats: NetworkStats::default(),
            epoch: vec![RouterEpochStats::default(); n],
            counters: vec![EventCounters::default(); n],
            faults: None,
            rc_doomed: Vec::new(),
            active: ActiveSet::new(n),
            inject_active: ActiveSet::new(n),
            epoch_pending_cycles: 0,
            tel: NetTelemetry::default(),
            #[cfg(feature = "verify")]
            verify: invariants::VerifyState::default(),
        }
    }

    /// Installs a telemetry handle, resolving the simulator's hot-path
    /// instruments (per-phase span timers, cycle/ARQ counters, buffer
    /// occupancy histogram). With a disabled handle — also the state of
    /// a freshly built network — every instrument is a single-branch
    /// no-op.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.tel = NetTelemetry::resolve(telemetry);
    }

    /// The network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The network topology.
    pub fn mesh(&self) -> Topo {
        self.mesh
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-router statistics for the current control epoch. Flushes the
    /// deferred cycle count first, so the returned records are complete.
    pub fn epoch_stats(&mut self) -> &[RouterEpochStats] {
        self.finish_epoch();
        &self.epoch
    }

    /// Per-router epoch records *without* flushing deferred cycle
    /// accounting. Callers must run [`Network::finish_epoch`] first;
    /// exists so trait-level `&self` accessors keep working.
    pub fn epoch_stats_raw(&self) -> &[RouterEpochStats] {
        &self.epoch
    }

    /// Flushes deferred epoch accounting into the per-router records.
    /// The sampling pass accumulates the uniform per-cycle `cycles`
    /// increment in one network-level counter; this folds it back in.
    /// Idempotent and cheap when nothing is pending.
    pub fn finish_epoch(&mut self) {
        if self.epoch_pending_cycles == 0 {
            return;
        }
        let pending = self.epoch_pending_cycles;
        self.epoch_pending_cycles = 0;
        for e in &mut self.epoch {
            e.cycles += pending;
        }
    }

    /// Resets per-router epoch statistics (call at each control epoch).
    /// When telemetry is enabled, samples each router's buffered-flit
    /// occupancy into the `sim.router.buffered_flits` histogram first —
    /// an epoch-boundary congestion snapshot with no per-cycle cost.
    pub fn reset_epoch_stats(&mut self) {
        if self.tel.buffered_flits.is_enabled() {
            for r in &self.routers {
                self.tel.buffered_flits.record(r.buffered_flits());
            }
        }
        self.epoch_pending_cycles = 0;
        for e in &mut self.epoch {
            e.reset();
        }
    }

    /// Clears cumulative network statistics and energy counters — used at
    /// a measurement-phase boundary (e.g. after warm-up or pre-training).
    /// In-flight traffic and learned state are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
        for c in &mut self.counters {
            c.reset();
        }
        // `unreachable_pairs` is a gauge, not an accumulator: re-seed it
        // from the live fault state so measurement-phase reports still
        // describe the surviving topology.
        if let Some(fs) = &self.faults {
            if let Some(fr) = &fs.routes {
                self.stats.unreachable_pairs = fr.unreachable_pairs();
            }
        }
    }

    /// Cumulative per-router energy event counters.
    pub fn counters(&self) -> &[EventCounters] {
        &self.counters
    }

    /// Immutable access to the error-control layer.
    pub fn protocol(&self) -> &E {
        &self.protocol
    }

    /// Mutable access to the error-control layer (e.g. for switching
    /// operation modes between epochs).
    pub fn protocol_mut(&mut self) -> &mut E {
        &mut self.protocol
    }

    /// Immutable access to a router (for feature extraction).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Installs a permanent hard-fault schedule. Each event is applied
    /// at the start of its cycle's `step`; an empty schedule leaves the
    /// network in the exact zero-fault fast path.
    ///
    /// Replaces any previously installed schedule; call before the
    /// first `step` (events whose cycle already passed are applied at
    /// the next step in one batch).
    ///
    /// # Panics
    ///
    /// Panics if an event names a node outside the mesh, a `Local`
    /// direction, or a link beyond a mesh edge.
    pub fn set_hard_faults(&mut self, mut events: Vec<HardFaultEvent>) {
        for ev in &events {
            match ev.kind {
                HardFaultKind::Router { node } => {
                    assert!(
                        node.index() < self.mesh.num_nodes(),
                        "fault node outside mesh"
                    );
                }
                HardFaultKind::Link { node, dir } => {
                    assert!(
                        node.index() < self.mesh.num_nodes(),
                        "fault node outside mesh"
                    );
                    assert!(
                        self.mesh.neighbor(node, dir).is_some(),
                        "hard fault on a nonexistent link {node}:{dir}"
                    );
                }
            }
        }
        if events.is_empty() {
            self.faults = None;
            return;
        }
        events.sort_by_key(|e| e.cycle);
        self.faults = Some(Box::new(FaultState::new(events, self.mesh.num_nodes())));
    }

    /// `true` once at least one hard-fault event has been applied (the
    /// network is routing on the fault-adaptive table).
    pub fn hard_faults_active(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.routes.is_some())
    }

    /// The fault-adaptive route table, once hard faults are active.
    pub fn fault_routes(&self) -> Option<&FaultRoutes> {
        self.faults.as_ref().and_then(|f| f.routes.as_deref())
    }

    /// Whether router `node` has failed.
    pub fn node_dead(&self, node: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.node_dead[node.index()])
    }

    /// Whether the channel leaving `node` in `dir` has failed.
    pub fn link_dead(&self, node: NodeId, dir: Direction) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.link_dead[node.index()][dir.index()])
    }

    /// Offers a data packet from `src` to `dst`, returning its id. The
    /// packet enters the source queue immediately and is injected
    /// flit-by-flit as the local port allows.
    ///
    /// Once hard faults are active, an offer between endpoints with no
    /// live route is *refused*: it consumes an id (so id streams stay
    /// aligned with the reference model) but injects nothing, counted
    /// in `packets_refused_unreachable`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is outside the mesh.
    pub fn offer(&mut self, src: NodeId, dst: NodeId) -> PacketId {
        assert!(src != dst, "packet source and destination must differ");
        assert!(
            src.index() < self.mesh.num_nodes() && dst.index() < self.mesh.num_nodes(),
            "node outside mesh"
        );
        if let Some(fs) = &self.faults {
            if let Some(fr) = &fs.routes {
                if !fr.reachable(src, dst) {
                    let id = PacketId(self.next_packet_id);
                    self.next_packet_id += 1;
                    self.stats.packets_refused_unreachable += 1;
                    return id;
                }
            }
        }
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src,
            dst,
            num_flits: self.config.flits_per_packet,
            class: PacketClass::Data,
            injected_at: self.cycle,
            payload_seed: crate::flit::splitmix64(self.payload_seed ^ id.0),
        };
        self.source_queues[src.index()].push_back((packet, 0));
        self.inject_active.insert(src.index());
        self.pending_packets.insert(id, (packet, 0));
        self.stats.packets_injected += 1;
        id
    }

    /// Offers a retransmit-request control packet (destination → source).
    fn offer_control(&mut self, from: NodeId, to: NodeId, of: PacketId) {
        if let Some(fs) = &self.faults {
            if let Some(fr) = &fs.routes {
                if !fr.reachable(from, to) {
                    // The source can no longer be reached; the request
                    // (and with it the retransmission) is abandoned.
                    return;
                }
            }
        }
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src: from,
            dst: to,
            num_flits: 1,
            class: PacketClass::RetransmitRequest { of },
            injected_at: self.cycle,
            payload_seed: crate::flit::splitmix64(self.payload_seed ^ id.0),
        };
        self.source_queues[from.index()].push_back((packet, 0));
        self.inject_active.insert(from.index());
        self.stats.control_packets += 1;
    }

    /// Advances the simulation by one clock cycle.
    ///
    /// With per-phase span timers disabled (the default), the SA/VA/RC
    /// phases run as one fused pass over the active-router worklist:
    /// each live router executes SA/ST → VA → RC back to back while its
    /// state is hot. With timers enabled, the same per-router phase
    /// functions run as six separately spanned loops so the exported
    /// per-phase histograms keep their v1 meaning. The two shapes are
    /// observably identical (see the fused-pass ordering argument on
    /// [`Network::fused_pipeline`]).
    pub fn step(&mut self) {
        let cycle = self.cycle;
        if let Some(fs) = &self.faults {
            if fs
                .events
                .get(fs.next_event)
                .is_some_and(|e| e.cycle <= cycle)
            {
                let _span = self.tel.hardfault_apply.start();
                self.apply_hard_fault_batch(cycle);
            }
        }
        if self.tel.phase_sa_st.is_enabled() {
            {
                let _span = self.tel.phase_events.start();
                self.process_events(cycle);
            }
            {
                let _span = self.tel.phase_inject.start();
                self.inject_phase(cycle);
            }
            {
                let _span = self.tel.phase_sa_st.start();
                self.sa_st_phase(cycle);
            }
            {
                let _span = self.tel.phase_va.start();
                self.va_phase();
            }
            {
                let _span = self.tel.phase_rc.start();
                self.rc_phase(cycle);
            }
            {
                let _span = self.tel.phase_sample.start();
                self.sample_phase();
            }
        } else {
            self.process_events(cycle);
            self.inject_phase(cycle);
            self.fused_pipeline(cycle);
            self.sample_phase();
        }
        self.tel.cycles.inc();
        self.cycle += 1;
        #[cfg(feature = "verify")]
        self.verify_invariants();
    }

    /// Advances until either the network is quiescent or `max_cycles`
    /// additional cycles have elapsed. Returns `true` on quiescence.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// `true` when no packet or flit remains anywhere in the system.
    ///
    /// Between steps both worklists equal their membership predicates
    /// (armed runs check this every cycle), so empty worklists certify
    /// that no router buffers a flit or owes a resend and no node has
    /// injection work — the drain loop's per-cycle quiescence probe
    /// costs a few word compares instead of a full state scan.
    pub fn is_quiescent(&self) -> bool {
        let quiet = self.active.is_empty()
            && self.inject_active.is_empty()
            && self.wheel.is_empty()
            && self.reassembly.is_empty();
        debug_assert_eq!(
            quiet,
            self.wheel.is_empty()
                && self.source_queues.iter().all(VecDeque::is_empty)
                && self.inject_progress.iter().all(Option::is_none)
                && self.reassembly.is_empty()
                && self.routers.iter().all(|r| {
                    r.inputs.iter().all(|vc| vc.fifo.is_empty())
                        && r.outputs.iter().all(|p| p.retx_pending.is_empty())
                }),
            "worklist quiescence probe diverged from the full state scan"
        );
        // Every live arena slot is owned by exactly one FIFO entry,
        // scheduled event, resend queue, or reassembly entry — all empty
        // here, so a non-zero live count would be a handle leak.
        debug_assert!(
            !quiet || self.arena.live() == 0,
            "flit arena leaks {} slots at quiescence",
            self.arena.live()
        );
        quiet
    }

    // ----- phases ---------------------------------------------------------

    fn process_events(&mut self, cycle: u64) {
        let mut events = self.wheel.take(cycle);
        for event in events.drain(..) {
            match event {
                Event::Arrival {
                    link,
                    vc,
                    flit,
                    seq,
                    kind,
                    pre_sent,
                } => self.handle_arrival(cycle, link, vc, flit, seq, kind, pre_sent),
                Event::DirectDeliver {
                    node,
                    in_port,
                    vc,
                    flit,
                } => {
                    if self
                        .faults
                        .as_ref()
                        .is_some_and(|fs| fs.doomed.contains(&self.arena[flit].packet))
                    {
                        // Evaporate (the hop already ACKed at accept
                        // time); return the buffer credit if the
                        // upstream link still lives.
                        if in_port != Direction::Local
                            && !self
                                .faults
                                .as_ref()
                                .is_some_and(|fs| fs.link_dead[node.index()][in_port.index()])
                        {
                            let up = self
                                .neighbors
                                .get(node, in_port)
                                .expect("flit arrived from a neighbor");
                            self.wheel.push(
                                cycle,
                                cycle + 1,
                                Event::Credit {
                                    node: up,
                                    port: in_port.opposite(),
                                    vc,
                                },
                            );
                        }
                        self.arena.free(flit);
                    } else {
                        self.accept_flit(node, in_port, vc, flit, cycle);
                    }
                }
                Event::Eject { node, flit } => self.handle_eject(cycle, node, flit),
                Event::Credit { node, port, vc } => {
                    let out = &mut self.routers[node.index()].outputs[port.index()];
                    let credit = &mut out.vcs[vc as usize].credits;
                    *credit = credit.saturating_add(1);
                    debug_assert!(
                        port == Direction::Local || *credit <= self.config.vc_depth,
                        "credit overflow on {node}:{port}"
                    );
                }
                Event::AckSignal {
                    node,
                    port,
                    seq,
                    kind,
                } => {
                    let out = &mut self.routers[node.index()].outputs[port.index()];
                    let (_, copy) = out.retx_buffer.acknowledge(seq, kind);
                    if let Some((flit, out_vc)) = copy {
                        // Re-materialize the buffered copy into a fresh
                        // arena slot: the slot of the rejected transfer was
                        // freed (its payload may carry an escaped fault
                        // draw), and the buffer keeps its own pristine copy
                        // for further NACKs.
                        let flit = self.arena.alloc(flit);
                        self.routers[node.index()].outputs[port.index()]
                            .retx_pending
                            .push_back(PendingRetransmit { flit, out_vc, seq });
                        // A pending resend is SA/ST work even on an
                        // otherwise-empty router.
                        self.active.insert(node.index());
                    }
                }
            }
        }
        self.wheel.recycle(events);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_arrival(
        &mut self,
        cycle: u64,
        link: LinkId,
        vc: u8,
        flit: FlitRef,
        seq: Option<SequenceNumber>,
        kind: TransferKind,
        pre_sent: bool,
    ) {
        let dst = self
            .neighbors
            .get(link.src, link.dir)
            .expect("arrival beyond mesh edge");
        let di = dst.index();
        let si = link.src.index();
        let in_port = link.dir.opposite();
        let ack_at = cycle + self.config.ack_latency as u64;

        // Hard-fault evaporation: flits of a doomed packet drain out at
        // arrival — the link-level contract (ACK + credit) completes so
        // the sender's ARQ window and credit pool recover, but the flit
        // goes no further. Arrivals only happen on live links: dead
        // links had their in-flight events swept at fault application.
        if self
            .faults
            .as_ref()
            .is_some_and(|fs| fs.doomed.contains(&self.arena[flit].packet))
        {
            if kind == TransferKind::HopRetransmit && seq.is_some() {
                let ivc = self.routers[di].input_mut(in_port.index(), vc as usize);
                if ivc.awaiting_retx == seq {
                    ivc.awaiting_retx = None;
                }
            }
            if let Some(seq) = seq {
                self.counters[di].ack_signals += 1;
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::AckSignal {
                        node: link.src,
                        port: link.dir,
                        seq,
                        kind: AckKind::Ack,
                    },
                );
            }
            self.wheel.push(
                cycle,
                cycle + 1,
                Event::Credit {
                    node: link.src,
                    port: link.dir,
                    vc,
                },
            );
            self.arena.free(flit);
            return;
        }

        // Go-back-N gate: while a rejected flit awaits retransmission on
        // this VC, auto-reject every non-matching arrival that carries a
        // sequence number (order preservation).
        let gate = self.routers[di]
            .input(in_port.index(), vc as usize)
            .awaiting_retx;
        if let Some(gate_seq) = gate {
            let matches = kind == TransferKind::HopRetransmit && seq == Some(gate_seq);
            if !matches {
                if let Some(seq) = seq {
                    self.stats.hop_nacks += 1;
                    self.tel.arq_nacks.inc();
                    self.epoch[di].nacks_out += 1;
                    self.epoch[si].nacks_in += 1;
                    self.counters[di].ack_signals += 1;
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::AckSignal {
                            node: link.src,
                            port: link.dir,
                            seq,
                            kind: AckKind::Nack,
                        },
                    );
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::Credit {
                            node: link.src,
                            port: link.dir,
                            vc,
                        },
                    );
                    // Keep the sender quiet until it processes the NACK.
                    let out = &mut self.routers[si].outputs[link.dir.index()];
                    out.next_free = out.next_free.max(ack_at);
                    // The gated flit is discarded; its resend will be
                    // re-materialized from the sender's buffered copy.
                    self.arena.free(flit);
                    return;
                }
                // A sequence-less arrival under a gate can only happen
                // across an ECC-off mode switch. It cannot be NACKed (the
                // sender holds no copy), so stall it on the wire until the
                // awaited retransmission lands — otherwise it would
                // overtake the rejected flit and corrupt per-VC flit order.
                self.wheel.push(
                    cycle,
                    cycle + 1,
                    Event::Arrival {
                        link,
                        vc,
                        flit,
                        seq,
                        kind,
                        pre_sent: false,
                    },
                );
                return;
            } else {
                // The awaited retransmission: clear the gate if it decodes.
            }
        }

        let protected = seq.is_some();
        // The fault draw mutates the arena slot in place. An operation-
        // mode-2 duplicate must see the payload *as sent*, so save the
        // two payload words for a potential rewind before the first draw.
        let saved_payload =
            (pre_sent && kind == TransferKind::Original).then(|| self.arena[flit].payload);
        let outcome = self.protocol.hop_transfer(
            link,
            &mut self.arena[flit],
            cycle,
            kind,
            protected,
            &mut self.counters[di],
        );
        match outcome {
            HopOutcome::Delivered | HopOutcome::DeliveredCorrected => {
                if outcome == HopOutcome::DeliveredCorrected {
                    self.stats.ecc_corrections += 1;
                }
                if kind == TransferKind::HopRetransmit {
                    self.routers[di]
                        .input_mut(in_port.index(), vc as usize)
                        .awaiting_retx = None;
                }
                self.accept_flit(dst, in_port, vc, flit, cycle);
                if let Some(seq) = seq {
                    self.counters[di].ack_signals += 1;
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::AckSignal {
                            node: link.src,
                            port: link.dir,
                            seq,
                            kind: AckKind::Ack,
                        },
                    );
                }
            }
            HopOutcome::Reject => {
                debug_assert!(seq.is_some(), "reject on a link without ARQ");
                // Operation mode 2: consult the proactive duplicate before
                // falling back to a NACK round trip. Rewind the slot to
                // the as-sent payload so the duplicate's draw is
                // independent of the original's.
                if kind == TransferKind::Original && pre_sent {
                    self.arena[flit].payload =
                        saved_payload.expect("payload saved before the first draw");
                    let o2 = self.protocol.hop_transfer(
                        link,
                        &mut self.arena[flit],
                        cycle,
                        TransferKind::PreRetransmitCopy,
                        protected,
                        &mut self.counters[di],
                    );
                    if o2 != HopOutcome::Reject {
                        if o2 == HopOutcome::DeliveredCorrected {
                            self.stats.ecc_corrections += 1;
                        }
                        self.stats.pre_retransmit_hits += 1;
                        self.wheel.push(
                            cycle,
                            cycle + 1,
                            Event::DirectDeliver {
                                node: dst,
                                in_port,
                                vc,
                                flit,
                            },
                        );
                        if let Some(seq) = seq {
                            self.counters[di].ack_signals += 1;
                            self.wheel.push(
                                cycle,
                                ack_at + 1,
                                Event::AckSignal {
                                    node: link.src,
                                    port: link.dir,
                                    seq,
                                    kind: AckKind::Ack,
                                },
                            );
                        }
                        return;
                    }
                }
                let seq = seq.expect("reject requires hop ARQ");
                // The rejected body is dropped; the retransmission will be
                // re-materialized from the sender's buffered copy.
                self.arena.free(flit);
                self.routers[di]
                    .input_mut(in_port.index(), vc as usize)
                    .awaiting_retx = Some(seq);
                self.stats.hop_nacks += 1;
                self.tel.arq_nacks.inc();
                self.epoch[di].nacks_out += 1;
                self.epoch[si].nacks_in += 1;
                self.counters[di].ack_signals += 1;
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::AckSignal {
                        node: link.src,
                        port: link.dir,
                        seq,
                        kind: AckKind::Nack,
                    },
                );
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::Credit {
                        node: link.src,
                        port: link.dir,
                        vc,
                    },
                );
                // Suspend the sender's port until the NACK is processed so
                // no younger flit enters the reorder window.
                let out = &mut self.routers[si].outputs[link.dir.index()];
                out.next_free = out.next_free.max(ack_at);
            }
        }
    }

    fn accept_flit(&mut self, node: NodeId, in_port: Direction, vc: u8, flit: FlitRef, cycle: u64) {
        let ni = node.index();
        self.counters[ni].buffer_writes += 1;
        self.epoch[ni].flits_in[in_port.index()] += 1;
        debug_assert!(
            self.routers[ni]
                .input(in_port.index(), vc as usize)
                .fifo
                .len()
                < self.config.vc_depth as usize,
            "input VC overflow at {node}:{in_port}:{vc}"
        );
        self.routers[ni].enqueue(in_port.index(), vc as usize, flit, cycle);
        self.active.insert(ni);
    }

    fn handle_eject(&mut self, cycle: u64, node: NodeId, flit: FlitRef) {
        if self
            .faults
            .as_ref()
            .is_some_and(|fs| fs.doomed.contains(&self.arena[flit].packet))
        {
            self.arena.free(flit);
            return;
        }
        self.counters[node.index()].crc_checks += 1;
        let (packet_id, attempt, is_control) = {
            let f = &self.arena[flit];
            (f.packet, f.attempt, f.class.is_control())
        };
        let expected = if is_control {
            1
        } else {
            self.config.flits_per_packet
        } as usize;
        if self.reassembly.get_mut(packet_id).is_none() {
            self.reassembly.insert(packet_id, Vec::new());
        }
        let entries = self
            .reassembly
            .get_mut(packet_id)
            .expect("entry just ensured");
        let idx = match entries.iter().position(|e| e.attempt == attempt) {
            Some(i) => i,
            None => {
                let flits = self.reassembly_pool.pop().unwrap_or_default();
                entries.push(ReassemblyEntry { attempt, flits });
                entries.len() - 1
            }
        };
        entries[idx].flits.push(flit);
        if entries[idx].flits.len() == expected {
            let entry = entries.swap_remove(idx);
            if entries.is_empty() {
                self.reassembly.remove(packet_id);
            }
            self.finish_packet(cycle, node, entry);
        }
    }

    fn finish_packet(&mut self, cycle: u64, node: NodeId, mut entry: ReassemblyEntry) {
        // Materialize the flit bodies into the reusable staging buffer and
        // release their arena slots — the packet is leaving the network.
        self.eject_scratch.clear();
        for fr in entry.flits.drain(..) {
            self.eject_scratch.push(self.arena[fr]);
            self.arena.free(fr);
        }
        self.reassembly_pool.push(entry.flits);
        let flits = std::mem::take(&mut self.eject_scratch);
        let head = flits[0];
        match head.class {
            PacketClass::RetransmitRequest { of } => {
                // The request reached the original source: re-queue the
                // packet. Stale requests (packet already delivered) are
                // ignored, as real hardware would.
                if let Some((packet, attempts)) = self.pending_packets.get_mut(of) {
                    *attempts = attempts.saturating_add(1);
                    let resend = (*packet, *attempts);
                    self.source_queues[node.index()].push_front(resend);
                    self.inject_active.insert(node.index());
                    self.stats.packet_retransmissions += 1;
                }
            }
            PacketClass::Data => {
                let outcome =
                    self.protocol
                        .eject_check(&flits, cycle, &mut self.counters[node.index()]);
                match outcome {
                    EjectOutcome::Accept => {
                        self.stats.packets_delivered += 1;
                        self.stats.flits_delivered += flits.len() as u64;
                        self.epoch[node.index()].core_activity_flits += flits.len() as u64;
                        let latency = cycle.saturating_sub(head.injected_at);
                        self.stats.latency.record(latency);
                        self.stats.last_delivery_cycle = cycle;
                        if let Some((packet, _)) = self.pending_packets.remove(head.packet) {
                            if flits
                                .iter()
                                .any(|f| f.payload != packet.payload_for(f.index))
                            {
                                self.stats.silent_corruptions += 1;
                            }
                        }
                        // Attribute the latency to every router on the
                        // packet's routed path (src and dst inclusive).
                        // Under hard faults the walk follows the current
                        // fault-adaptive table and stops early if the
                        // path was severed after delivery.
                        let mut r = head.src;
                        loop {
                            let e = &mut self.epoch[r.index()];
                            e.latency_sum += latency;
                            e.latency_count += 1;
                            if r == head.dst {
                                break;
                            }
                            let dir = match self.faults.as_ref().and_then(|f| f.routes.as_ref()) {
                                Some(fr) => match fr.next_hop(r, head.dst) {
                                    Some(d) if d != Direction::Local => d,
                                    _ => break,
                                },
                                None => self.routes.next_hop(r, head.dst),
                            };
                            r = self.neighbors.get(r, dir).expect("route stays in mesh");
                        }
                    }
                    EjectOutcome::RequestRetransmit => {
                        self.stats.packets_failed_crc += 1;
                        self.offer_control(node, head.src, head.packet);
                    }
                }
            }
        }
        self.eject_scratch = flits;
    }

    fn inject_phase(&mut self, cycle: u64) {
        let local = Direction::Local.index();
        let vdepth = self.config.vc_depth as usize;
        let vcs = self.config.vcs_per_port;
        // Worklist scan, ascending node order — identical visit order to
        // the old dense loop on the nodes that have work; nodes outside
        // the set have no open injection and an empty queue, for which
        // the loop body was a no-op. Arena allocation order (and with it
        // every flit handle) is therefore unchanged.
        for wi in 0..self.inject_active.num_words() {
            let mut word = self.inject_active.word(wi);
            while word != 0 {
                let ni = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                if self.inject_progress[ni].is_none() {
                    if let Some((packet, attempt)) = self.source_queues[ni].pop_front() {
                        // Rotate the starting VC; prefer one with space now.
                        let start = self.next_inject_vc[ni];
                        let mut vc = start;
                        for off in 0..vcs {
                            let cand = (start + off) % vcs;
                            if self.routers[ni].input(local, cand as usize).fifo.len() < vdepth {
                                vc = cand;
                                break;
                            }
                        }
                        self.next_inject_vc[ni] = (vc + 1) % vcs;
                        self.inject_progress[ni] = Some(InjectProgress {
                            packet,
                            attempt,
                            next_flit: 0,
                            vc,
                        });
                    }
                }
                let Some(prog) = &mut self.inject_progress[ni] else {
                    // Queue drained with nothing in flight: retire.
                    self.inject_active.remove(ni);
                    continue;
                };
                if self.routers[ni].input(local, prog.vc as usize).fifo.len() >= vdepth {
                    continue; // local port back-pressured this cycle
                }
                let flit = prog
                    .packet
                    .make_flit(prog.next_flit, prog.attempt, &self.crc);
                let flit = self.arena.alloc(flit);
                self.routers[ni].enqueue(local, prog.vc as usize, flit, cycle);
                self.active.insert(ni);
                self.counters[ni].crc_encodes += 1;
                self.counters[ni].buffer_writes += 1;
                self.epoch[ni].flits_in[local] += 1;
                if prog.attempt == 0 {
                    self.epoch[ni].core_activity_flits += 1;
                }
                prog.next_flit += 1;
                if prog.next_flit == prog.packet.num_flits {
                    self.inject_progress[ni] = None;
                    if self.source_queues[ni].is_empty() {
                        self.inject_active.remove(ni);
                    }
                }
            }
        }
    }

    /// Split-path SA/ST driver (telemetry spans enabled): one pass over
    /// the worklist. Routers outside the worklist have no occupied VC
    /// and no pending resend, which implies `active_vcs == 0` — exactly
    /// the routers the old dense loop skipped.
    fn sa_st_phase(&mut self, cycle: u64) {
        for wi in 0..self.active.num_words() {
            let mut word = self.active.word(wi);
            while word != 0 {
                let ri = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                self.sa_st_router(ri, cycle);
            }
        }
    }

    /// SA/ST for one router: priority resends, then separable
    /// input-first/output switch arbitration and traversal.
    fn sa_st_router(&mut self, ri: usize, cycle: u64) {
        let Self {
            routers,
            protocol,
            counters,
            epoch,
            stats,
            wheel,
            config,
            arena,
            neighbors,
            tel,
            faults,
            ..
        } = self;
        let link_latency = config.link_latency as u64;
        let router = &mut routers[ri];
        {
            // A router with no VC in Active state and no pending resend
            // has no SA/ST work: no switch request can be asserted, so
            // skipping it is exact — arbiters are untouched since grants
            // on empty request sets are no-ops, and `next_free` is only
            // advanced when something is sent.
            router.debug_check_stage_counters();
            if router.active_vcs == 0 && router.outputs.iter().all(|o| o.retx_pending.is_empty()) {
                return;
            }
            let rid = router.id;
            let v = router.vcs_per_port;
            let np = router.num_ports;
            let mut port_used = [false; MAX_PORTS];

            // Phase A: priority resends of NACKed flits. A port with a
            // pending retransmission is dedicated to it (order safety).
            for (out_p, used) in port_used.iter_mut().enumerate().take(np) {
                let dir = Direction::from_index(out_p);
                if dir == Direction::Local {
                    continue;
                }
                if cycle < router.outputs[out_p].next_free {
                    *used = true;
                    continue;
                }
                if router.outputs[out_p].retx_pending.is_empty() {
                    continue;
                }
                *used = true;
                let can_send = {
                    let pr = router.outputs[out_p]
                        .retx_pending
                        .front()
                        .expect("non-empty");
                    router.outputs[out_p].vcs[pr.out_vc as usize].credits > 0
                };
                if !can_send {
                    continue;
                }
                let pr = router.outputs[out_p]
                    .retx_pending
                    .pop_front()
                    .expect("non-empty");
                router.outputs[out_p].vcs[pr.out_vc as usize].credits -= 1;
                let link = LinkId { src: rid, dir };
                let delay = protocol.tx_delay(link) as u64;
                let pipeline = protocol.pipeline_latency(link) as u64;
                let pre = protocol.pre_retransmit(link);
                counters[ri].retransmit_sends += 1;
                counters[ri].link_traversals[out_p] += 1 + u64::from(pre);
                epoch[ri].flits_out[out_p] += 1;
                stats.flit_retransmissions += 1;
                tel.arq_retransmits.inc();
                wheel.push(
                    cycle,
                    cycle + link_latency + delay + pipeline,
                    Event::Arrival {
                        link,
                        vc: pr.out_vc,
                        flit: pr.flit,
                        seq: Some(pr.seq),
                        kind: TransferKind::HopRetransmit,
                        pre_sent: pre,
                    },
                );
                router.outputs[out_p].next_free = cycle + 1 + delay + u64::from(pre);
            }

            // Phase B: input-first selection. Ports past the last
            // Active VC are skipped: they can assert no request, so the
            // input arbiters and `selected` entries they would produce
            // are identical to not visiting them at all.
            let mut selected: [Option<(usize, usize, u8)>; MAX_PORTS] = [None; MAX_PORTS];
            let mut any_selected = false;
            let mut remaining_active = router.active_vcs;
            for (in_p, sel) in selected.iter_mut().enumerate().take(np) {
                if remaining_active == 0 {
                    break;
                }
                router.sa_scratch.fill(false);
                let mut any = false;
                for (in_v, ivc) in router.inputs[in_p * v..(in_p + 1) * v].iter().enumerate() {
                    let VcState::Active {
                        out_port, out_vc, ..
                    } = ivc.state
                    else {
                        continue;
                    };
                    remaining_active -= 1;
                    let Some(front) = ivc.fifo.front() else {
                        continue;
                    };
                    if front.arrived_at >= cycle {
                        continue;
                    }
                    let op = out_port.index();
                    if port_used[op] || cycle < router.outputs[op].next_free {
                        continue;
                    }
                    if out_port != Direction::Local {
                        if router.outputs[op].vcs[out_vc as usize].credits == 0 {
                            continue;
                        }
                        let link = LinkId {
                            src: rid,
                            dir: out_port,
                        };
                        if protocol.hop_arq(link) && router.outputs[op].retx_buffer.is_full() {
                            continue;
                        }
                    }
                    router.sa_scratch[in_v] = true;
                    any = true;
                }
                if !any {
                    continue;
                }
                if let Some(win) = router.sa_input_arbiters[in_p].grant(&router.sa_scratch) {
                    let VcState::Active {
                        out_port, out_vc, ..
                    } = router.inputs[in_p * v + win].state
                    else {
                        unreachable!("selected VC must be active");
                    };
                    *sel = Some((win, out_port.index(), out_vc));
                    any_selected = true;
                }
            }
            if !any_selected {
                return; // no winner anywhere: Phase C cannot fire
            }

            // Phase C: output arbitration + switch traversal.
            for (out_p, &used) in port_used.iter().enumerate().take(np) {
                if used || cycle < router.outputs[out_p].next_free {
                    continue;
                }
                let mut requests = [false; MAX_PORTS];
                let mut any = false;
                for (in_p, sel) in selected.iter().enumerate().take(np) {
                    if let Some((_, op, _)) = sel {
                        if *op == out_p {
                            requests[in_p] = true;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue;
                }
                let in_p = router.sa_output_arbiters[out_p]
                    .grant(&requests[..np])
                    .expect("a request was asserted");
                let (in_v, _, out_vc) = selected[in_p].expect("request implies selection");

                counters[ri].sa_grants += 1;
                let bf = router.inputs[in_p * v + in_v]
                    .fifo
                    .pop_front()
                    .expect("granted VC holds a flit");
                counters[ri].buffer_reads += 1;
                counters[ri].crossbar_traversals += 1;
                epoch[ri].flits_out[out_p] += 1;
                let is_tail = arena[bf.flit].kind.is_tail();
                if is_tail {
                    router.inputs[in_p * v + in_v].state = VcState::Idle;
                    router.active_vcs -= 1;
                    if !router.inputs[in_p * v + in_v].fifo.is_empty() {
                        // The next packet's head is already buffered; it
                        // becomes an RC candidate immediately.
                        router.rc_pending += 1;
                    }
                }
                if !router.inputs[in_p * v + in_v].occupied() {
                    router.occupied_vcs -= 1;
                }

                // Return the freed buffer slot to the upstream router —
                // unless the upstream link died (dead links never see
                // their credits replenished).
                let in_dir = Direction::from_index(in_p);
                if in_dir != Direction::Local
                    && !faults.as_ref().is_some_and(|f| f.link_dead[ri][in_p])
                {
                    let upstream = neighbors
                        .get(rid, in_dir)
                        .expect("flit arrived from a neighbor");
                    wheel.push(
                        cycle,
                        cycle + 1,
                        Event::Credit {
                            node: upstream,
                            port: in_dir.opposite(),
                            vc: in_v as u8,
                        },
                    );
                }

                let out_dir = Direction::from_index(out_p);
                if is_tail {
                    router.outputs[out_p].vcs[out_vc as usize].allocated = false;
                }
                if out_dir == Direction::Local {
                    wheel.push(
                        cycle,
                        cycle + 1,
                        Event::Eject {
                            node: rid,
                            flit: bf.flit,
                        },
                    );
                    router.outputs[out_p].next_free = cycle + 1;
                } else {
                    router.outputs[out_p].vcs[out_vc as usize].credits -= 1;
                    let link = LinkId {
                        src: rid,
                        dir: out_dir,
                    };
                    let delay = protocol.tx_delay(link) as u64;
                    let pipeline = protocol.pipeline_latency(link) as u64;
                    let pre = protocol.pre_retransmit(link);
                    counters[ri].link_traversals[out_p] += 1 + u64::from(pre);
                    let seq = if protocol.hop_arq(link) {
                        counters[ri].retransmit_buffer_writes += 1;
                        // The buffer keeps the body *by value*: the wire-side
                        // arena slot is mutated in place by fault draws and
                        // must never alias the canonical retransmit copy.
                        Some(
                            router.outputs[out_p]
                                .retx_buffer
                                .push((arena[bf.flit], out_vc), cycle)
                                .expect("fullness checked during selection"),
                        )
                    } else {
                        None
                    };
                    wheel.push(
                        cycle,
                        cycle + link_latency + delay + pipeline,
                        Event::Arrival {
                            link,
                            vc: out_vc,
                            flit: bf.flit,
                            seq,
                            kind: TransferKind::Original,
                            pre_sent: pre,
                        },
                    );
                    router.outputs[out_p].next_free = cycle + 1 + delay + u64::from(pre);
                }
            }
        }
    }

    fn va_phase(&mut self) {
        for wi in 0..self.active.num_words() {
            let mut word = self.active.word(wi);
            while word != 0 {
                let ri = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                self.va_router(ri);
            }
        }
    }

    #[inline]
    fn va_router(&mut self, ri: usize) {
        let router = &mut self.routers[ri];
        if router.occupied_vcs == 0 {
            return; // no VC holds a packet: VA has nothing to do
        }
        let grants = router.va_stage();
        self.counters[ri].va_allocations += grants;
    }

    fn rc_phase(&mut self, cycle: u64) {
        for wi in 0..self.active.num_words() {
            let mut word = self.active.word(wi);
            while word != 0 {
                let ri = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                self.rc_router(ri, cycle);
            }
        }
        if !self.rc_doomed.is_empty() {
            self.finish_rc_dooms(cycle);
        }
    }

    #[inline]
    fn rc_router(&mut self, ri: usize, cycle: u64) {
        let Self {
            routers,
            routes,
            arena,
            faults,
            rc_doomed,
            ..
        } = self;
        let fault_routes = faults.as_deref().and_then(|f| f.routes.as_deref());
        let router = &mut routers[ri];
        if router.occupied_vcs == 0 {
            return; // no buffered head flit: RC has nothing to do
        }
        router.rc_stage(cycle, routes, fault_routes, arena, rc_doomed);
    }

    /// The fused per-cycle pipeline kernel: one pass over the active
    /// worklist running SA/ST → VA → RC for each live router before
    /// moving to the next.
    ///
    /// Equivalent to the phase-major loops because the three stages of
    /// router `i` read and write only router-`i` state — cross-router
    /// effects travel exclusively through the event wheel, and of the
    /// three stages only SA/ST pushes events, so the wheel's push order
    /// under router-major fusion matches the phase-major order exactly.
    /// Doom resolution (`finish_rc_dooms`) still runs after every
    /// router's RC, as in the split shape, because it purges state
    /// across arbitrary routers.
    fn fused_pipeline(&mut self, cycle: u64) {
        for wi in 0..self.active.num_words() {
            let mut word = self.active.word(wi);
            while word != 0 {
                let ri = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                self.sa_st_router(ri, cycle);
                self.va_router(ri);
                self.rc_router(ri, cycle);
            }
        }
        if !self.rc_doomed.is_empty() {
            self.finish_rc_dooms(cycle);
        }
    }

    fn sample_phase(&mut self) {
        // Idle routers (not on the worklist) hold zero occupied VCs, so
        // their per-cycle sample is exactly zero; defer their `cycles`
        // bump to `finish_epoch` and only touch live routers here.
        self.epoch_pending_cycles += 1;
        if self.tel.active_router_cycles.is_enabled() {
            let members: u32 = (0..self.active.num_words())
                .map(|wi| self.active.word(wi).count_ones())
                .sum();
            self.tel.active_router_cycles.add(u64::from(members));
        }
        for wi in 0..self.active.num_words() {
            let mut word = self.active.word(wi);
            while word != 0 {
                let ri = (wi << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                let router = &self.routers[ri];
                let occ = router.occupied_input_vcs();
                self.epoch[ri].occupied_vc_cycles += occ as u64;
                if occ == 0 && router.outputs.iter().all(|o| o.retx_pending.is_empty()) {
                    self.active.remove(ri);
                }
            }
        }
    }

    /// Rebuilds both worklists from their membership predicates. Called
    /// after hard-fault purges, which rewrite router and source-queue
    /// state wholesale rather than through the incremental insert sites.
    fn rebuild_worklists(&mut self) {
        for (ri, router) in self.routers.iter().enumerate() {
            self.active.set(
                ri,
                router.occupied_vcs > 0
                    || router.outputs.iter().any(|o| !o.retx_pending.is_empty()),
            );
        }
        for ni in 0..self.routers.len() {
            self.inject_active.set(
                ni,
                self.inject_progress[ni].is_some() || !self.source_queues[ni].is_empty(),
            );
        }
    }

    // ----- hard faults ----------------------------------------------------

    /// Applies every hard-fault event due at `cycle`: marks the dead
    /// elements, recomputes the fault-adaptive route table, evacuates
    /// state resident on dead elements, and purges the packets the
    /// batch killed. Runs at the top of `step` — before event
    /// processing — so both simulation engines observe the failure at
    /// the same phase-order point.
    fn apply_hard_fault_batch(&mut self, cycle: u64) {
        let mut fs = self
            .faults
            .take()
            .expect("caller checked a schedule exists");
        let mut lost = 0u64;
        let doomed_before = fs.doomed.len();

        // 1. Consume the due events, recording which routers the batch
        // touches: the dead node itself plus both endpoints of every
        // killed link. Elements that died in *earlier* batches were
        // evacuated then and can never reacquire state (dead links carry
        // no arrivals and return no credits), so the evacuation pass
        // below only needs to visit this batch's endpoints.
        let mut applied = 0u64;
        let mut affected = vec![false; self.routers.len()];
        let mut any_node_died = false;
        let compass = self.mesh.compass();
        while let Some(ev) = fs.events.get(fs.next_event) {
            if ev.cycle > cycle {
                break;
            }
            match ev.kind {
                HardFaultKind::Router { node } => {
                    fs.node_dead[node.index()] = true;
                    any_node_died = true;
                    affected[node.index()] = true;
                    for &dir in compass {
                        if let Some(peer) = self.mesh.neighbor(node, dir) {
                            fs.kill_link(&self.neighbors, node, dir);
                            affected[peer.index()] = true;
                        }
                    }
                }
                HardFaultKind::Link { node, dir } => {
                    fs.kill_link(&self.neighbors, node, dir);
                    affected[node.index()] = true;
                    if let Some(peer) = self.neighbors.get(node, dir) {
                        affected[peer.index()] = true;
                    }
                }
            }
            fs.next_event += 1;
            applied += 1;
        }

        // 2. Recompute the routing tree on the surviving topology. The
        // dead sets here are a pure function of the schedule, so lanes
        // sharing a schedule (and hence a cache) reuse one table; the
        // applied-event count identifies the batch.
        let node_alive: Vec<bool> = fs.node_dead.iter().map(|&d| !d).collect();
        let compute = || {
            FaultRoutes::compute(self.mesh, &node_alive, |n, d| {
                !fs.link_dead[n.index()][d.index()]
            })
        };
        let routes = match &self.fault_cache {
            Some(cache) => cache.get_or_compute(fs.next_event, compute),
            None => Arc::new(compute()),
        };
        let unreachable = routes.unreachable_pairs();
        fs.routes = Some(routes);

        // 3. Wheel sweep: in-flight events on dead elements die in
        // place. Killing an arrival dooms its packet — the wormhole has
        // been severed.
        {
            let arena = &mut self.arena;
            for slot in &mut self.wheel.slots {
                slot.retain(|ev| {
                    let dead_flit = match *ev {
                        Event::Arrival { link, flit, .. } => {
                            if fs.link_dead[link.src.index()][link.dir.index()] {
                                Some(flit)
                            } else {
                                None
                            }
                        }
                        Event::DirectDeliver { node, flit, .. } | Event::Eject { node, flit } => {
                            if fs.node_dead[node.index()] {
                                Some(flit)
                            } else {
                                None
                            }
                        }
                        Event::Credit { node, port, .. } | Event::AckSignal { node, port, .. } => {
                            return !(fs.node_dead[node.index()]
                                || fs.link_dead[node.index()][port.index()]);
                        }
                    };
                    match dead_flit {
                        Some(flit) => {
                            let f = &arena[flit];
                            if fs.doom(f.packet, !f.class.is_control()) {
                                lost += 1;
                            }
                            arena.free(flit);
                            false
                        }
                        None => true,
                    }
                });
            }
        }

        // 4. Evacuate dead routers and dead-link ports, and divert live
        // VCs that were routed toward a link that just died.
        {
            let arena = &mut self.arena;
            let mut dealloc: Vec<(usize, usize)> = Vec::new();
            for router in self.routers.iter_mut() {
                let ni = router.id.index();
                if !affected[ni] {
                    // Not an endpoint of anything that died this batch:
                    // no port flush, and no VC can point at a newly dead
                    // link (a VC's out link is this router's own port).
                    continue;
                }
                if fs.node_dead[ni] {
                    // Dead router: everything it holds is lost, and its
                    // core can no longer source traffic.
                    for ivc in router.inputs.iter_mut() {
                        {
                            for bf in ivc.fifo.drain(..) {
                                let f = &arena[bf.flit];
                                if fs.doom(f.packet, !f.class.is_control()) {
                                    lost += 1;
                                }
                                arena.free(bf.flit);
                            }
                            match ivc.state {
                                VcState::NeedsVa { packet, .. }
                                | VcState::Active { packet, .. } => {
                                    // Flits of this packet already left
                                    // through the crossbar; it can never
                                    // complete (single-flit packets go
                                    // Idle at the tail, so a non-idle VC
                                    // always implies a multi-flit data
                                    // packet once its FIFO is empty).
                                    if fs.doom(packet, true) {
                                        lost += 1;
                                    }
                                }
                                VcState::Idle => {}
                            }
                            ivc.state = VcState::Idle;
                            ivc.awaiting_retx = None;
                        }
                    }
                    for out in router.outputs.iter_mut() {
                        for pr in out.retx_pending.drain(..) {
                            let f = &arena[pr.flit];
                            if fs.doom(f.packet, !f.class.is_control()) {
                                lost += 1;
                            }
                            arena.free(pr.flit);
                        }
                        out.retx_buffer.clear();
                        for ovc in out.vcs.iter_mut() {
                            ovc.allocated = false;
                        }
                    }
                    router.recount_stage_counters();
                    for (p, _) in self.source_queues[ni].drain(..) {
                        if fs.doom(p.id, !p.class.is_control()) {
                            lost += 1;
                        }
                    }
                    if let Some(prog) = self.inject_progress[ni].take() {
                        if fs.doom(prog.packet.id, !prog.packet.class.is_control()) {
                            lost += 1;
                        }
                    }
                    continue;
                }

                // Live router: flush ports attached to dead links.
                for &dir in compass {
                    let p = dir.index();
                    if !fs.link_dead[ni][p] {
                        continue;
                    }
                    for ivc in router.port_vcs_mut(p).iter_mut() {
                        for bf in ivc.fifo.drain(..) {
                            let f = &arena[bf.flit];
                            if fs.doom(f.packet, !f.class.is_control()) {
                                lost += 1;
                            }
                            arena.free(bf.flit);
                        }
                        match ivc.state {
                            VcState::NeedsVa { packet, .. } | VcState::Active { packet, .. } => {
                                // The rest of the packet is stranded
                                // upstream of the dead link.
                                if fs.doom(packet, true) {
                                    lost += 1;
                                }
                            }
                            VcState::Idle => {}
                        }
                        if let VcState::Active {
                            out_port, out_vc, ..
                        } = ivc.state
                        {
                            dealloc.push((out_port.index(), out_vc as usize));
                        }
                        ivc.state = VcState::Idle;
                        ivc.awaiting_retx = None;
                    }
                    for pr in router.outputs[p].retx_pending.drain(..) {
                        let f = &arena[pr.flit];
                        if fs.doom(f.packet, !f.class.is_control()) {
                            lost += 1;
                        }
                        arena.free(pr.flit);
                    }
                    router.outputs[p].retx_buffer.clear();
                }

                // Self-healing divert: VCs routed toward a dead output
                // link. A packet that has not yet sent a flit through
                // the crossbar re-enters RC; a severed wormhole is lost.
                for ivc in router.inputs.iter_mut() {
                    {
                        match ivc.state {
                            VcState::NeedsVa { out_port, .. }
                                if fs.link_dead[ni][out_port.index()] =>
                            {
                                ivc.state = VcState::Idle;
                            }
                            VcState::Active {
                                out_port,
                                out_vc,
                                packet,
                            } if fs.link_dead[ni][out_port.index()] => {
                                dealloc.push((out_port.index(), out_vc as usize));
                                let head_waiting = ivc
                                    .fifo
                                    .front()
                                    .is_some_and(|bf| arena[bf.flit].kind.is_head());
                                if !head_waiting && fs.doom(packet, true) {
                                    lost += 1;
                                }
                                ivc.state = VcState::Idle;
                            }
                            _ => {}
                        }
                    }
                }
                for &(op, ov) in &dealloc {
                    router.outputs[op].vcs[ov].allocated = false;
                }
                dealloc.clear();
                router.recount_stage_counters();
            }
        }

        // 5. Packets whose source or destination core died are lost, as
        // are reassembly attempts collecting at a dead destination. Only
        // node deaths can strand these windows, so a link-only batch
        // skips both scans (earlier batches already doomed their
        // casualties).
        if any_node_died {
            let stale: Vec<PacketId> = self
                .pending_packets
                .values()
                .filter(|(p, _)| fs.node_dead[p.src.index()] || fs.node_dead[p.dst.index()])
                .map(|(p, _)| p.id)
                .collect();
            for id in stale {
                if fs.doom(id, true) {
                    lost += 1;
                }
            }
            let stale: Vec<(PacketId, bool)> = self
                .reassembly
                .values()
                .filter_map(|entries| {
                    let f = &self.arena[entries[0].flits[0]];
                    fs.node_dead[f.dst.index()].then_some((f.packet, !f.class.is_control()))
                })
                .collect();
            for (id, is_data) in stale {
                if fs.doom(id, is_data) {
                    lost += 1;
                }
            }
        }

        // 6. Purge everything the batch doomed, then publish counters.
        // A batch that doomed nothing new leaves no resident traces to
        // purge — every packet doomed earlier was purged when it was
        // doomed — but the evacuation above may still have rewritten
        // router state, so the worklists are re-derived either way.
        if fs.doomed.len() > doomed_before {
            self.purge_doomed_resident(&fs, cycle);
        } else {
            self.rebuild_worklists();
        }
        self.stats.hard_fault_events += applied;
        self.tel.hardfault_events.add(applied);
        self.stats.reroute_events += 1;
        self.tel.hardfault_reroutes.inc();
        self.stats.unreachable_pairs = unreachable;
        self.tel.hardfault_unreachable_pairs.set(unreachable as f64);
        self.stats.packets_lost_hard_fault += lost;
        self.tel.hardfault_packets_lost.add(lost);
        self.faults = Some(fs);
    }

    /// Called after the RC phase when head flits found their
    /// destination unreachable on the surviving topology: dooms those
    /// packets and purges their resident flits so the network stays
    /// drainable.
    fn finish_rc_dooms(&mut self, cycle: u64) {
        let mut fs = self.faults.take().expect("RC dooms require fault state");
        let mut dooms = std::mem::take(&mut self.rc_doomed);
        let mut lost = 0u64;
        for &(id, is_data) in &dooms {
            if fs.doom(id, is_data) {
                lost += 1;
            }
        }
        dooms.clear();
        self.rc_doomed = dooms;
        self.purge_doomed_resident(&fs, cycle);
        self.stats.packets_lost_hard_fault += lost;
        self.tel.hardfault_packets_lost.add(lost);
        self.faults = Some(fs);
    }

    /// Removes every resident trace of doomed packets — buffered flits
    /// (returning credits on live links), VC ownership, injection
    /// state, source-queue entries, and the pending/reassembly windows.
    /// In-flight wheel events self-clean on arrival instead. The fault
    /// state is passed detached because callers hold it taken out of
    /// `self.faults`.
    fn purge_doomed_resident(&mut self, fs: &FaultState, now: u64) {
        let Self {
            routers,
            arena,
            wheel,
            neighbors,
            source_queues,
            inject_progress,
            pending_packets,
            reassembly,
            reassembly_pool,
            ..
        } = self;
        let mut dealloc: Vec<(usize, usize)> = Vec::new();
        for router in routers.iter_mut() {
            let rid = router.id;
            let ni = rid.index();
            for in_p in 0..router.num_ports {
                let in_dir = Direction::from_index(in_p);
                let upstream = if in_dir == Direction::Local {
                    None
                } else {
                    neighbors.get(rid, in_dir)
                };
                let credits_live = !fs.node_dead[ni]
                    && !fs.link_dead[ni][in_p]
                    && upstream.is_some_and(|up| !fs.node_dead[up.index()]);
                for (in_v, ivc) in router.port_vcs_mut(in_p).iter_mut().enumerate() {
                    if !ivc.fifo.is_empty() {
                        ivc.fifo.retain(|bf| {
                            let keep = !fs.doomed.contains(&arena[bf.flit].packet);
                            if !keep {
                                arena.free(bf.flit);
                                if credits_live {
                                    wheel.push(
                                        now,
                                        now + 1,
                                        Event::Credit {
                                            node: upstream.expect("live link has a peer"),
                                            port: in_dir.opposite(),
                                            vc: in_v as u8,
                                        },
                                    );
                                }
                            }
                            keep
                        });
                    }
                    match ivc.state {
                        VcState::NeedsVa { packet, .. } if fs.doomed.contains(&packet) => {
                            ivc.state = VcState::Idle;
                        }
                        VcState::Active {
                            out_port,
                            out_vc,
                            packet,
                        } if fs.doomed.contains(&packet) => {
                            dealloc.push((out_port.index(), out_vc as usize));
                            ivc.state = VcState::Idle;
                        }
                        _ => {}
                    }
                }
            }
            for &(op, ov) in &dealloc {
                router.outputs[op].vcs[ov].allocated = false;
            }
            dealloc.clear();
            router.recount_stage_counters();
        }
        for (ni, prog) in inject_progress.iter_mut().enumerate() {
            if prog
                .as_ref()
                .is_some_and(|p| fs.doomed.contains(&p.packet.id))
            {
                *prog = None;
            }
            source_queues[ni].retain(|(p, _)| !fs.doomed.contains(&p.id));
        }
        let stale: Vec<PacketId> = pending_packets
            .values()
            .filter(|(p, _)| fs.doomed.contains(&p.id))
            .map(|(p, _)| p.id)
            .collect();
        for id in stale {
            pending_packets.remove(id);
        }
        let stale: Vec<PacketId> = reassembly
            .values()
            .map(|entries| arena[entries[0].flits[0]].packet)
            .filter(|id| fs.doomed.contains(id))
            .collect();
        for id in stale {
            let entries = reassembly.remove(id).expect("collected above");
            for mut e in entries {
                for fr in e.flits.drain(..) {
                    arena.free(fr);
                }
                reassembly_pool.push(e.flits);
            }
        }
        // Purges rewrite router and injection state wholesale, so the
        // incremental worklist insert sites cannot see the changes;
        // re-derive both sets from their predicates.
        self.rebuild_worklists();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_control::PerfectLink;

    fn net_4x4() -> Network<PerfectLink> {
        let config = NocConfig::builder().mesh(4, 4).build();
        Network::new(config, PerfectLink::new(), 42)
    }

    #[test]
    fn single_packet_delivery() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(net.run_until_quiescent(500));
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().packets_injected, 1);
        assert_eq!(net.stats().flits_delivered, 4);
        assert_eq!(net.stats().silent_corruptions, 0);
        assert_eq!(net.stats().packets_failed_crc, 0);
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        // 1 hop: inject(t) → RC(t+1) → VA(t+2) → SA/ST(t+3) → wire →
        // arrive(t+4) … 4 cycles per router stage per hop, plus ejection,
        // plus 3 serialization cycles for the 3 trailing flits.
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(1, 0));
        assert!(net.run_until_quiescent(200));
        let lat = net.stats().latency.mean();
        // 2 routers × 4 stages + 1 link + 1 eject + 3 serialization = 13.
        assert!(
            (10.0..=16.0).contains(&lat),
            "unexpected zero-load latency {lat}"
        );
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut near = net_4x4();
        let mesh = near.mesh();
        near.offer(mesh.node_at(0, 0), mesh.node_at(1, 0));
        assert!(near.run_until_quiescent(300));

        let mut far = net_4x4();
        far.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(far.run_until_quiescent(300));

        assert!(far.stats().latency.mean() > near.stats().latency.mean());
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net = net_4x4();
        // All-to-all traffic.
        for i in 0..16u16 {
            for j in 0..16u16 {
                if i != j {
                    net.offer(NodeId(i), NodeId(j));
                }
            }
        }
        let offered = net.stats().packets_injected;
        assert_eq!(offered, 16 * 15);
        assert!(net.run_until_quiescent(20_000), "network did not drain");
        assert_eq!(net.stats().packets_delivered, offered);
        assert_eq!(net.stats().silent_corruptions, 0);
    }

    #[test]
    fn quiescent_initially_and_after_drain() {
        let mut net = net_4x4();
        assert!(net.is_quiescent());
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(2, 2));
        assert!(!net.is_quiescent());
        assert!(net.run_until_quiescent(500));
    }

    #[test]
    fn conservation_of_flits() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        for x in 0..4u16 {
            net.offer(mesh.node_at(x, 0), mesh.node_at(x, 3));
        }
        assert!(net.run_until_quiescent(2_000));
        let s = net.stats();
        assert_eq!(
            s.flits_delivered,
            s.packets_delivered * 4,
            "all delivered packets carry 4 flits"
        );
        // Every injected flit was CRC-encoded exactly once.
        let encodes: u64 = net.counters().iter().map(|c| c.crc_encodes).sum();
        assert_eq!(encodes, s.packets_injected * 4);
        let checks: u64 = net.counters().iter().map(|c| c.crc_checks).sum();
        assert_eq!(checks, s.flits_delivered);
    }

    #[test]
    fn epoch_stats_accumulate_and_reset() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 0));
        for _ in 0..50 {
            net.step();
        }
        let src = mesh.node_at(0, 0).index();
        assert!(net.epoch_stats()[src].cycles == 50);
        assert!(net.epoch_stats()[src].flits_in[Direction::Local.index()] > 0);
        net.reset_epoch_stats();
        assert_eq!(net.epoch_stats()[src].cycles, 0);
        assert_eq!(net.epoch_stats()[src].flits_in[Direction::Local.index()], 0);
    }

    #[test]
    fn per_router_latency_attribution_covers_path() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(2, 0);
        net.offer(src, dst);
        assert!(net.run_until_quiescent(500));
        for node in [src, mesh.node_at(1, 0), dst] {
            assert_eq!(
                net.epoch_stats()[node.index()].latency_count,
                1,
                "router {node} missing latency attribution"
            );
        }
        assert_eq!(
            net.epoch_stats()[mesh.node_at(3, 3).index()].latency_count,
            0
        );
    }

    #[test]
    #[should_panic(expected = "source and destination must differ")]
    fn offer_to_self_panics() {
        let mut net = net_4x4();
        net.offer(NodeId(0), NodeId(0));
    }

    #[test]
    fn saturating_throughput_bounded_by_ejection() {
        // Everyone sends to node (1,1): ejection bandwidth (1 flit/cycle)
        // bounds aggregate delivery.
        let mut net = net_4x4();
        let mesh = net.mesh();
        let hot = mesh.node_at(1, 1);
        for round in 0..10 {
            for n in mesh.nodes() {
                if n != hot {
                    net.offer(n, hot);
                }
            }
            let _ = round;
        }
        assert!(net.run_until_quiescent(50_000));
        assert_eq!(net.stats().packets_delivered, 150);
    }

    #[test]
    fn counters_track_crossbar_and_links() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(1, 0));
        assert!(net.run_until_quiescent(500));
        let src = mesh.node_at(0, 0).index();
        let c = &net.counters()[src];
        // 4 flits crossed the source's crossbar and its East link.
        assert_eq!(c.crossbar_traversals, 4);
        assert_eq!(c.link_traversals[Direction::East.index()], 4);
        assert_eq!(c.buffer_reads, 4);
        assert_eq!(c.buffer_writes, 4);
    }
}

#[cfg(test)]
mod arq_tests {
    //! Direct exercise of the hop-level ARQ machinery (retransmit
    //! buffers, NACK round trips, go-back-N ordering) with a scripted,
    //! deterministic error control.

    use super::*;
    use crate::error_control::ScriptedErrorControl;

    fn net_with(protocol: ScriptedErrorControl) -> Network<ScriptedErrorControl> {
        let config = NocConfig::builder().mesh(4, 4).build();
        Network::new(config, protocol, 99)
    }

    #[test]
    fn reliable_arq_links_ack_everything() {
        let mut net = net_with(ScriptedErrorControl::reliable());
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(net.run_until_quiescent(1_000));
        let s = net.stats();
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.hop_nacks, 0);
        assert_eq!(s.flit_retransmissions, 0);
        // Every inter-router hop buffered a copy and got an ACK back.
        let copies: u64 = net
            .counters()
            .iter()
            .map(|c| c.retransmit_buffer_writes)
            .sum();
        let acks: u64 = net.counters().iter().map(|c| c.ack_signals).sum();
        assert!(copies > 0);
        assert_eq!(acks, copies, "one ACK per buffered transfer");
    }

    #[test]
    fn rejected_flits_are_retransmitted_and_delivered_intact() {
        let mut net = net_with(ScriptedErrorControl::reject_every(7));
        for i in 0..8u16 {
            net.offer(NodeId(i), NodeId(15 - i));
        }
        assert!(
            net.run_until_quiescent(10_000),
            "must drain despite rejects"
        );
        let s = net.stats();
        assert_eq!(s.packets_delivered, 8);
        assert!(s.hop_nacks > 0, "rejects must raise NACKs");
        assert!(s.flit_retransmissions > 0, "NACKs must trigger resends");
        assert_eq!(s.silent_corruptions, 0);
        assert_eq!(s.packets_failed_crc, 0, "hop ARQ hides errors end-to-end");
    }

    #[test]
    fn heavy_rejection_still_converges_in_order() {
        // Every 3rd transfer rejected: go-back-N churn is constant; the
        // network must still deliver everything without order corruption
        // (order violations would panic the router state machine in
        // debug builds or surface as CRC failures).
        let mut net = net_with(ScriptedErrorControl::reject_every(3));
        let mesh = net.mesh();
        for x in 0..4u16 {
            for y in 0..4u16 {
                if (x, y) != (3, 3) {
                    net.offer(mesh.node_at(x, y), mesh.node_at(3, 3));
                }
            }
        }
        assert!(net.run_until_quiescent(30_000));
        let s = net.stats();
        assert_eq!(s.packets_delivered, 15);
        assert_eq!(s.silent_corruptions, 0);
        assert!(
            s.flit_retransmissions >= s.hop_nacks / 2,
            "most NACKs must produce a resend"
        );
    }

    #[test]
    fn pre_retransmission_rescues_rejects_without_nacks() {
        // With proactive duplicates and every 6th transfer rejected, the
        // duplicate (next transfer, not divisible by 6) always rescues:
        // no NACK round trips at all.
        let mut net = net_with(ScriptedErrorControl::reject_every(6).with_pre_retransmit(true));
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 0));
        net.offer(mesh.node_at(0, 1), mesh.node_at(3, 1));
        assert!(net.run_until_quiescent(2_000));
        let s = net.stats();
        assert_eq!(s.packets_delivered, 2);
        assert!(s.pre_retransmit_hits > 0, "duplicates must be consulted");
        assert_eq!(s.hop_nacks, 0, "duplicates preempt the NACK path");
    }

    #[test]
    fn tx_delay_slows_but_preserves_delivery() {
        let mut fast = net_with(ScriptedErrorControl::reliable());
        let mut slow = net_with(ScriptedErrorControl::reliable().with_tx_delay(2));
        let mesh = fast.mesh();
        for net in [&mut fast, &mut slow] {
            net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
            assert!(net.run_until_quiescent(2_000));
            assert_eq!(net.stats().packets_delivered, 1);
        }
        // 6 hops × 2 extra cycles each = +12 cycles of pure stall.
        let delta = slow.stats().latency.mean() - fast.stats().latency.mean();
        assert!(
            (10.0..=30.0).contains(&delta),
            "tx_delay=2 should add ~12+ cycles, got {delta}"
        );
    }

    #[test]
    fn retransmissions_consume_credits_correctly() {
        // Saturating traffic with rejects: if credits leaked, the network
        // would wedge long before draining.
        let mut net = net_with(ScriptedErrorControl::reject_every(4));
        let mesh = net.mesh();
        for round in 0..20 {
            for i in 0..16u16 {
                let dst = NodeId((i + 5) % 16);
                if NodeId(i) != dst {
                    net.offer(NodeId(i), dst);
                }
            }
            let _ = round;
        }
        assert!(net.run_until_quiescent(60_000), "credit leak would wedge");
        assert_eq!(net.stats().packets_delivered, net.stats().packets_injected);
        let _ = mesh;
    }
}

#[cfg(test)]
mod hardfault_tests {
    //! Hard-fault semantics: permanent link/router failures, doomed-
    //! packet evaporation, self-healing rerouting, and loss accounting.

    use super::*;
    use crate::error_control::{PerfectLink, ScriptedErrorControl};

    fn net_4x4() -> Network<PerfectLink> {
        let config = NocConfig::builder().mesh(4, 4).build();
        Network::new(config, PerfectLink::new(), 42)
    }

    fn link(cycle: u64, node: NodeId, dir: Direction) -> HardFaultEvent {
        HardFaultEvent {
            cycle,
            kind: HardFaultKind::Link { node, dir },
        }
    }

    fn router(cycle: u64, node: NodeId) -> HardFaultEvent {
        HardFaultEvent {
            cycle,
            kind: HardFaultKind::Router { node },
        }
    }

    #[test]
    fn empty_schedule_leaves_fault_machinery_cold() {
        let mut net = net_4x4();
        net.set_hard_faults(Vec::new());
        assert!(!net.hard_faults_active());
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(net.run_until_quiescent(500));
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().hard_fault_events, 0);
        assert_eq!(net.stats().reroute_events, 0);
    }

    #[test]
    fn link_fault_before_traffic_reroutes_everything() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.set_hard_faults(vec![link(0, mesh.node_at(1, 1), Direction::East)]);
        for i in 0..16u16 {
            for j in 0..16u16 {
                if i != j {
                    net.offer(NodeId(i), NodeId(j));
                }
            }
        }
        assert!(net.run_until_quiescent(30_000), "network must drain");
        let s = net.stats();
        assert_eq!(s.hard_fault_events, 1);
        assert_eq!(s.reroute_events, 1);
        assert_eq!(s.unreachable_pairs, 0, "one dead link cannot partition");
        assert_eq!(s.packets_lost_hard_fault, 0, "fault predates all traffic");
        assert_eq!(s.packets_delivered, s.packets_injected);
        assert!(net.link_dead(mesh.node_at(1, 1), Direction::East));
        assert!(net.link_dead(mesh.node_at(2, 1), Direction::West));
    }

    #[test]
    fn router_fault_mid_flight_drains_with_exact_loss_accounting() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        let dead = mesh.node_at(1, 1);
        net.set_hard_faults(vec![router(40, dead)]);
        for i in 0..16u16 {
            for j in 0..16u16 {
                if i != j {
                    net.offer(NodeId(i), NodeId(j));
                }
            }
        }
        assert!(net.run_until_quiescent(60_000), "network must drain");
        let s = net.stats();
        assert_eq!(s.hard_fault_events, 1);
        assert!(
            s.packets_lost_hard_fault > 0,
            "mid-flight death loses packets"
        );
        // With a perfect link layer every injected packet is either
        // delivered or lost to the fault — never silently dropped.
        assert_eq!(
            s.packets_delivered + s.packets_lost_hard_fault,
            s.packets_injected,
            "loss accounting must be exact"
        );
        assert!(net.node_dead(dead));
        assert_eq!(
            s.unreachable_pairs, 0,
            "mesh minus one router stays connected"
        );
    }

    #[test]
    fn mid_flight_link_fault_drains_with_exact_loss_accounting() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.set_hard_faults(vec![
            link(25, mesh.node_at(0, 0), Direction::East),
            link(35, mesh.node_at(1, 2), Direction::South),
        ]);
        for i in 0..16u16 {
            for j in 0..16u16 {
                if i != j {
                    net.offer(NodeId(i), NodeId(j));
                }
            }
        }
        assert!(net.run_until_quiescent(60_000), "network must drain");
        let s = net.stats();
        assert_eq!(s.hard_fault_events, 2);
        assert_eq!(s.reroute_events, 2, "one recompute per fault batch");
        assert_eq!(
            s.packets_delivered + s.packets_lost_hard_fault,
            s.packets_injected
        );
    }

    #[test]
    fn offers_to_unreachable_destinations_are_refused() {
        // 4×1 line mesh cut in the middle: {0,1} | {2,3}.
        let config = NocConfig::builder().mesh(4, 1).build();
        let mut net = Network::new(config, PerfectLink::new(), 7);
        net.set_hard_faults(vec![link(0, NodeId(1), Direction::East)]);
        net.step(); // apply the fault batch
        assert!(net.hard_faults_active());
        assert_eq!(net.stats().unreachable_pairs, 8);
        net.offer(NodeId(0), NodeId(3)); // refused: other side of the cut
        net.offer(NodeId(0), NodeId(1)); // accepted: same side
        assert!(net.run_until_quiescent(500));
        let s = net.stats();
        assert_eq!(s.packets_refused_unreachable, 1);
        assert_eq!(s.packets_injected, 1);
        assert_eq!(s.packets_delivered, 1);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let mut net = net_4x4();
            let mesh = net.mesh();
            net.set_hard_faults(vec![
                router(30, mesh.node_at(2, 2)),
                link(55, mesh.node_at(0, 1), Direction::South),
            ]);
            for i in 0..16u16 {
                for j in 0..16u16 {
                    if i != j {
                        net.offer(NodeId(i), NodeId(j));
                    }
                }
            }
            assert!(net.run_until_quiescent(60_000));
            net.stats().clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical inputs must give identical stats");
    }

    #[test]
    fn arq_links_survive_mid_flight_router_death() {
        // Hop ARQ + go-back-N churn + a router death: gates, retransmit
        // buffers, and credits must all unwind without wedging.
        let config = NocConfig::builder().mesh(4, 4).build();
        let mut net = Network::new(config, ScriptedErrorControl::reject_every(5), 99);
        let mesh = net.mesh();
        net.set_hard_faults(vec![router(25, mesh.node_at(1, 2))]);
        for round in 0..4u16 {
            for i in 0..16u16 {
                let dst = NodeId((i + 3 + round) % 16);
                if NodeId(i) != dst {
                    net.offer(NodeId(i), dst);
                }
            }
        }
        assert!(
            net.run_until_quiescent(60_000),
            "ARQ state must unwind around the dead router"
        );
        let s = net.stats();
        assert!(s.packets_lost_hard_fault > 0);
        assert_eq!(
            s.packets_delivered + s.packets_lost_hard_fault,
            s.packets_injected
        );
        assert_eq!(s.silent_corruptions, 0);
    }

    #[test]
    fn reset_stats_preserves_unreachable_pairs_gauge() {
        let config = NocConfig::builder().mesh(4, 1).build();
        let mut net = Network::new(config, PerfectLink::new(), 7);
        net.set_hard_faults(vec![link(0, NodeId(1), Direction::East)]);
        net.step();
        assert_eq!(net.stats().unreachable_pairs, 8);
        net.reset_stats();
        assert_eq!(
            net.stats().unreachable_pairs,
            8,
            "gauge must survive the measurement-phase boundary"
        );
        assert_eq!(net.stats().hard_fault_events, 0, "accumulators reset");
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn schedule_validation_rejects_edge_links() {
        let mut net = net_4x4();
        net.set_hard_faults(vec![link(0, NodeId(0), Direction::North)]);
    }

    #[test]
    fn second_fault_batch_composes_with_first() {
        // Two sequential router deaths carve the 4×4 mesh down; traffic
        // offered between batches must still route around both holes.
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.set_hard_faults(vec![
            router(10, mesh.node_at(1, 1)),
            router(700, mesh.node_at(2, 2)),
        ]);
        for _ in 0..30 {
            net.step();
        }
        // Between the batches: offer traffic that must skirt (1,1).
        net.offer(mesh.node_at(0, 1), mesh.node_at(2, 1));
        assert!(net.run_until_quiescent(60_000));
        // Idle through the second batch, then route around both holes.
        while net.cycle() <= 700 {
            net.step();
        }
        net.offer(mesh.node_at(1, 2), mesh.node_at(3, 2));
        assert!(net.run_until_quiescent(60_000));
        let s = net.stats();
        assert_eq!(s.hard_fault_events, 2);
        assert_eq!(s.reroute_events, 2);
        assert_eq!(
            s.packets_delivered + s.packets_lost_hard_fault,
            s.packets_injected
        );
    }
}
