//! The network: routers, links, event scheduling, injection/ejection, and
//! the per-cycle simulation loop.
//!
//! [`Network::step`] advances one clock cycle through six phases:
//!
//! 1. **Events** — flit arrivals (with error-control processing), credit
//!    returns, ACK/NACK processing, ejection/reassembly.
//! 2. **Injection** — one flit per node from the source queue into the
//!    local input port.
//! 3. **SA/ST** — switch allocation and traversal (priority resends
//!    first, then separable input-first/output arbitration).
//! 4. **VA** — virtual-channel allocation.
//! 5. **RC** — route computation.
//! 6. **Sampling** — per-router occupancy statistics.
//!
//! Running the phases in this order makes each pipeline stage take one
//! cycle: a flit arriving at cycle *t* computes its route at *t+1*, gets a
//! VC at *t+2*, and crosses the switch at *t+3* — the paper's 4-stage
//! router — then spends `link_latency` cycles on the wire.
//!
//! ## Hop-level ARQ ordering (go-back-N gate)
//!
//! When a flit is rejected by the downstream ECC decoder, flits of the
//! same packet may already be in flight behind it. To preserve per-VC flit
//! order the receiver *gates* the VC: every non-matching arrival is
//! auto-rejected (NACKed) until the retransmission of the rejected flit
//! arrives — classic go-back-N. The sender's port is additionally
//! suspended from the reject until its NACK is processed, so no new flit
//! can slip into the window.

use crate::config::NocConfig;
use crate::error_control::{EjectOutcome, ErrorControl, HopOutcome, TransferKind};
use crate::flit::{Flit, FlitArena, FlitRef, Packet, PacketClass, PacketId, PacketWindow};
use crate::router::{PendingRetransmit, Router, VcState};
use crate::routing::RouteTable;
use crate::stats::{EventCounters, NetworkStats, RouterEpochStats};
use crate::topology::{Direction, LinkId, Mesh, NeighborTable, NodeId, NUM_PORTS};
use noc_coding::arq::{AckKind, SequenceNumber};
use noc_coding::crc::Crc32;
use rlnoc_telemetry::{Counter, Histogram, Telemetry, TimerHandle};
use std::collections::VecDeque;

/// Per-cycle runtime invariant checks (child module so it can traverse
/// the private event wheel); compiled only under the `verify` feature
/// and armed by `RLNOC_VERIFY=1`.
#[cfg(feature = "verify")]
#[path = "invariants.rs"]
mod invariants;

/// Event-wheel horizon in cycles; all scheduled events must land within
/// this many cycles of the present.
const WHEEL: u64 = 64;

/// A scheduled simulation event. Flit-carrying events hold arena
/// handles, so an event is a few machine words rather than a full flit
/// body.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A flit reaches the downstream end of `link`.
    Arrival {
        link: LinkId,
        vc: u8,
        flit: FlitRef,
        seq: Option<SequenceNumber>,
        kind: TransferKind,
        /// Whether a proactive duplicate was sent one cycle behind
        /// (captured at send time; mode 2).
        pre_sent: bool,
    },
    /// A pre-retransmitted copy that was already accepted lands in the
    /// downstream buffer (one cycle after the rejected original).
    DirectDeliver {
        node: NodeId,
        in_port: Direction,
        vc: u8,
        flit: FlitRef,
    },
    /// A flit leaves through the local port into the destination core.
    Eject { node: NodeId, flit: FlitRef },
    /// A buffer credit returns to the upstream router's output port.
    Credit {
        node: NodeId,
        port: Direction,
        vc: u8,
    },
    /// An ACK/NACK side-band signal reaches the sending router.
    AckSignal {
        node: NodeId,
        port: Direction,
        seq: SequenceNumber,
        kind: AckKind,
    },
}

/// Cyclic event wheel with slot-buffer reuse: draining a slot swaps in
/// a recycled buffer instead of leaving a fresh zero-capacity `Vec`
/// behind, so steady-state event scheduling performs no allocation.
#[derive(Debug)]
struct Wheel {
    slots: Vec<Vec<Event>>,
    /// The buffer drained by the previous cycle, cleared and waiting to
    /// back the next drained slot.
    spare: Vec<Event>,
}

impl Wheel {
    fn new() -> Self {
        Self {
            slots: (0..WHEEL).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
        }
    }

    fn push(&mut self, now: u64, at: u64, event: Event) {
        assert!(at > now, "events must be scheduled in the future");
        assert!(at - now < WHEEL, "event horizon exceeded");
        self.slots[(at % WHEEL) as usize].push(event);
    }

    /// Drains the slot for `cycle`, leaving the spare buffer (with its
    /// grown capacity) in its place. Return the drained buffer via
    /// [`Wheel::recycle`] once processed.
    fn take(&mut self, cycle: u64) -> Vec<Event> {
        std::mem::replace(
            &mut self.slots[(cycle % WHEEL) as usize],
            std::mem::take(&mut self.spare),
        )
    }

    fn recycle(&mut self, mut buffer: Vec<Event>) {
        buffer.clear();
        self.spare = buffer;
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

/// Progress of a packet being injected flit-by-flit at a node.
#[derive(Debug, Clone)]
struct InjectProgress {
    packet: Packet,
    attempt: u8,
    next_flit: u8,
    vc: u8,
}

/// A cycle-accurate NoC simulation instance, generic over the
/// [`ErrorControl`] implementation that governs link protection.
///
/// # Example
///
/// ```
/// use noc_sim::config::NocConfig;
/// use noc_sim::error_control::PerfectLink;
/// use noc_sim::network::Network;
///
/// let config = NocConfig::builder().mesh(4, 4).build();
/// let mut net = Network::new(config, PerfectLink::new(), 1);
/// let mesh = net.mesh();
/// net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
/// for _ in 0..100 {
///     net.step();
/// }
/// assert_eq!(net.stats().packets_delivered, 1);
/// ```
#[derive(Debug)]
pub struct Network<E: ErrorControl> {
    config: NocConfig,
    mesh: Mesh,
    protocol: E,
    routers: Vec<Router>,
    crc: Crc32,
    cycle: u64,
    wheel: Wheel,
    /// Precomputed X-Y next-hop lookup (RC stage, latency attribution).
    routes: RouteTable,
    /// Precomputed node × direction neighbor lookup (link endpoints).
    neighbors: NeighborTable,
    /// Slab of in-flight flit bodies; everything else moves handles.
    arena: FlitArena,
    source_queues: Vec<VecDeque<(Packet, u8)>>,
    inject_progress: Vec<Option<InjectProgress>>,
    next_inject_vc: Vec<u8>,
    /// Source store: packets awaiting confirmed delivery, with their
    /// retransmission attempt count. Dense over the in-flight id band.
    pending_packets: PacketWindow<(Packet, u8)>,
    /// Destination reassembly. The window is keyed by packet id; the
    /// inner list disambiguates end-to-end attempts (almost always one).
    reassembly: PacketWindow<Vec<ReassemblyEntry>>,
    /// Recycled flit-handle buffers for reassembly entries.
    reassembly_pool: Vec<Vec<FlitRef>>,
    /// Reused staging buffer: flit bodies of a completed packet, handed
    /// to `eject_check` and the payload-verification pass.
    eject_scratch: Vec<Flit>,
    next_packet_id: u64,
    payload_seed: u64,
    stats: NetworkStats,
    epoch: Vec<RouterEpochStats>,
    counters: Vec<EventCounters>,
    tel: NetTelemetry,
    /// Watchdog state for the runtime invariant checker.
    #[cfg(feature = "verify")]
    verify: invariants::VerifyState,
}

/// Flits of one end-to-end transmission attempt collecting at the
/// destination.
#[derive(Debug)]
struct ReassemblyEntry {
    attempt: u8,
    flits: Vec<FlitRef>,
}

/// Pre-resolved telemetry handles for the simulation hot path. All
/// handles are inert no-ops until [`Network::set_telemetry`] installs an
/// enabled [`Telemetry`]; disabled, each site costs one branch.
#[derive(Debug, Clone, Default)]
struct NetTelemetry {
    phase_events: TimerHandle,
    phase_inject: TimerHandle,
    phase_sa_st: TimerHandle,
    phase_va: TimerHandle,
    phase_rc: TimerHandle,
    phase_sample: TimerHandle,
    cycles: Counter,
    arq_nacks: Counter,
    arq_retransmits: Counter,
    buffered_flits: Histogram,
}

impl NetTelemetry {
    fn resolve(telemetry: &Telemetry) -> Self {
        Self {
            phase_events: telemetry.timer("sim.phase.process_events"),
            phase_inject: telemetry.timer("sim.phase.inject"),
            phase_sa_st: telemetry.timer("sim.phase.sa_st"),
            phase_va: telemetry.timer("sim.phase.va"),
            phase_rc: telemetry.timer("sim.phase.rc"),
            phase_sample: telemetry.timer("sim.phase.sample"),
            cycles: telemetry.counter("sim.cycles"),
            arq_nacks: telemetry.counter("sim.arq.nacks"),
            arq_retransmits: telemetry.counter("sim.arq.retransmit_sends"),
            buffered_flits: telemetry.histogram("sim.router.buffered_flits"),
        }
    }
}

impl<E: ErrorControl> Network<E> {
    /// Builds a network from `config` with the given error-control layer.
    ///
    /// `seed` determinizes packet payload contents.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NocConfig::validate`].
    pub fn new(config: NocConfig, protocol: E, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let mesh = config.mesh;
        let n = mesh.num_nodes();
        Self {
            config,
            mesh,
            protocol,
            routers: mesh.nodes().map(|id| Router::new(id, &config)).collect(),
            crc: Crc32::new(),
            cycle: 0,
            wheel: Wheel::new(),
            routes: RouteTable::new(mesh),
            neighbors: NeighborTable::new(mesh),
            arena: FlitArena::new(),
            source_queues: vec![VecDeque::new(); n],
            inject_progress: vec![None; n],
            next_inject_vc: vec![0; n],
            pending_packets: PacketWindow::new(),
            reassembly: PacketWindow::new(),
            reassembly_pool: Vec::new(),
            eject_scratch: Vec::new(),
            next_packet_id: 0,
            payload_seed: seed,
            stats: NetworkStats::default(),
            epoch: vec![RouterEpochStats::default(); n],
            counters: vec![EventCounters::default(); n],
            tel: NetTelemetry::default(),
            #[cfg(feature = "verify")]
            verify: invariants::VerifyState::default(),
        }
    }

    /// Installs a telemetry handle, resolving the simulator's hot-path
    /// instruments (per-phase span timers, cycle/ARQ counters, buffer
    /// occupancy histogram). With a disabled handle — also the state of
    /// a freshly built network — every instrument is a single-branch
    /// no-op.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.tel = NetTelemetry::resolve(telemetry);
    }

    /// The network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The mesh topology.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-router statistics for the current control epoch.
    pub fn epoch_stats(&self) -> &[RouterEpochStats] {
        &self.epoch
    }

    /// Resets per-router epoch statistics (call at each control epoch).
    /// When telemetry is enabled, samples each router's buffered-flit
    /// occupancy into the `sim.router.buffered_flits` histogram first —
    /// an epoch-boundary congestion snapshot with no per-cycle cost.
    pub fn reset_epoch_stats(&mut self) {
        if self.tel.buffered_flits.is_enabled() {
            for r in &self.routers {
                self.tel.buffered_flits.record(r.buffered_flits());
            }
        }
        for e in &mut self.epoch {
            e.reset();
        }
    }

    /// Clears cumulative network statistics and energy counters — used at
    /// a measurement-phase boundary (e.g. after warm-up or pre-training).
    /// In-flight traffic and learned state are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
        for c in &mut self.counters {
            c.reset();
        }
    }

    /// Cumulative per-router energy event counters.
    pub fn counters(&self) -> &[EventCounters] {
        &self.counters
    }

    /// Immutable access to the error-control layer.
    pub fn protocol(&self) -> &E {
        &self.protocol
    }

    /// Mutable access to the error-control layer (e.g. for switching
    /// operation modes between epochs).
    pub fn protocol_mut(&mut self) -> &mut E {
        &mut self.protocol
    }

    /// Immutable access to a router (for feature extraction).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Offers a data packet from `src` to `dst`, returning its id. The
    /// packet enters the source queue immediately and is injected
    /// flit-by-flit as the local port allows.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is outside the mesh.
    pub fn offer(&mut self, src: NodeId, dst: NodeId) -> PacketId {
        assert!(src != dst, "packet source and destination must differ");
        assert!(
            src.index() < self.mesh.num_nodes() && dst.index() < self.mesh.num_nodes(),
            "node outside mesh"
        );
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src,
            dst,
            num_flits: self.config.flits_per_packet,
            class: PacketClass::Data,
            injected_at: self.cycle,
            payload_seed: crate::flit::splitmix64(self.payload_seed ^ id.0),
        };
        self.source_queues[src.index()].push_back((packet, 0));
        self.pending_packets.insert(id, (packet, 0));
        self.stats.packets_injected += 1;
        id
    }

    /// Offers a retransmit-request control packet (destination → source).
    fn offer_control(&mut self, from: NodeId, to: NodeId, of: PacketId) {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src: from,
            dst: to,
            num_flits: 1,
            class: PacketClass::RetransmitRequest { of },
            injected_at: self.cycle,
            payload_seed: crate::flit::splitmix64(self.payload_seed ^ id.0),
        };
        self.source_queues[from.index()].push_back((packet, 0));
        self.stats.control_packets += 1;
    }

    /// Advances the simulation by one clock cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        {
            let _span = self.tel.phase_events.start();
            self.process_events(cycle);
        }
        {
            let _span = self.tel.phase_inject.start();
            self.inject_phase(cycle);
        }
        {
            let _span = self.tel.phase_sa_st.start();
            self.sa_st_phase(cycle);
        }
        {
            let _span = self.tel.phase_va.start();
            self.va_phase();
        }
        {
            let _span = self.tel.phase_rc.start();
            self.rc_phase(cycle);
        }
        {
            let _span = self.tel.phase_sample.start();
            self.sample_phase();
        }
        self.tel.cycles.inc();
        self.cycle += 1;
        #[cfg(feature = "verify")]
        self.verify_invariants();
    }

    /// Advances until either the network is quiescent or `max_cycles`
    /// additional cycles have elapsed. Returns `true` on quiescence.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// `true` when no packet or flit remains anywhere in the system.
    pub fn is_quiescent(&self) -> bool {
        let quiet = self.wheel.is_empty()
            && self.source_queues.iter().all(VecDeque::is_empty)
            && self.inject_progress.iter().all(Option::is_none)
            && self.reassembly.is_empty()
            && self.routers.iter().all(|r| {
                r.inputs
                    .iter()
                    .all(|port| port.iter().all(|vc| vc.fifo.is_empty()))
                    && r.outputs.iter().all(|p| p.retx_pending.is_empty())
            });
        // Every live arena slot is owned by exactly one FIFO entry,
        // scheduled event, resend queue, or reassembly entry — all empty
        // here, so a non-zero live count would be a handle leak.
        debug_assert!(
            !quiet || self.arena.live() == 0,
            "flit arena leaks {} slots at quiescence",
            self.arena.live()
        );
        quiet
    }

    // ----- phases ---------------------------------------------------------

    fn process_events(&mut self, cycle: u64) {
        let mut events = self.wheel.take(cycle);
        for event in events.drain(..) {
            match event {
                Event::Arrival {
                    link,
                    vc,
                    flit,
                    seq,
                    kind,
                    pre_sent,
                } => self.handle_arrival(cycle, link, vc, flit, seq, kind, pre_sent),
                Event::DirectDeliver {
                    node,
                    in_port,
                    vc,
                    flit,
                } => {
                    self.accept_flit(node, in_port, vc, flit, cycle);
                }
                Event::Eject { node, flit } => self.handle_eject(cycle, node, flit),
                Event::Credit { node, port, vc } => {
                    let out = &mut self.routers[node.index()].outputs[port.index()];
                    let credit = &mut out.vcs[vc as usize].credits;
                    *credit = credit.saturating_add(1);
                    debug_assert!(
                        port == Direction::Local || *credit <= self.config.vc_depth,
                        "credit overflow on {node}:{port}"
                    );
                }
                Event::AckSignal {
                    node,
                    port,
                    seq,
                    kind,
                } => {
                    let out = &mut self.routers[node.index()].outputs[port.index()];
                    let (_, copy) = out.retx_buffer.acknowledge(seq, kind);
                    if let Some((flit, out_vc)) = copy {
                        // Re-materialize the buffered copy into a fresh
                        // arena slot: the slot of the rejected transfer was
                        // freed (its payload may carry an escaped fault
                        // draw), and the buffer keeps its own pristine copy
                        // for further NACKs.
                        let flit = self.arena.alloc(flit);
                        self.routers[node.index()].outputs[port.index()]
                            .retx_pending
                            .push_back(PendingRetransmit { flit, out_vc, seq });
                    }
                }
            }
        }
        self.wheel.recycle(events);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_arrival(
        &mut self,
        cycle: u64,
        link: LinkId,
        vc: u8,
        flit: FlitRef,
        seq: Option<SequenceNumber>,
        kind: TransferKind,
        pre_sent: bool,
    ) {
        let dst = self
            .neighbors
            .get(link.src, link.dir)
            .expect("arrival beyond mesh edge");
        let di = dst.index();
        let si = link.src.index();
        let in_port = link.dir.opposite();
        let ack_at = cycle + self.config.ack_latency as u64;

        // Go-back-N gate: while a rejected flit awaits retransmission on
        // this VC, auto-reject every non-matching arrival that carries a
        // sequence number (order preservation).
        let gate = self.routers[di].inputs[in_port.index()][vc as usize].awaiting_retx;
        if let Some(gate_seq) = gate {
            let matches = kind == TransferKind::HopRetransmit && seq == Some(gate_seq);
            if !matches {
                if let Some(seq) = seq {
                    self.stats.hop_nacks += 1;
                    self.tel.arq_nacks.inc();
                    self.epoch[di].nacks_out += 1;
                    self.epoch[si].nacks_in += 1;
                    self.counters[di].ack_signals += 1;
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::AckSignal {
                            node: link.src,
                            port: link.dir,
                            seq,
                            kind: AckKind::Nack,
                        },
                    );
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::Credit {
                            node: link.src,
                            port: link.dir,
                            vc,
                        },
                    );
                    // Keep the sender quiet until it processes the NACK.
                    let out = &mut self.routers[si].outputs[link.dir.index()];
                    out.next_free = out.next_free.max(ack_at);
                    // The gated flit is discarded; its resend will be
                    // re-materialized from the sender's buffered copy.
                    self.arena.free(flit);
                    return;
                }
                // A sequence-less arrival under a gate can only happen
                // across an ECC-off mode switch. It cannot be NACKed (the
                // sender holds no copy), so stall it on the wire until the
                // awaited retransmission lands — otherwise it would
                // overtake the rejected flit and corrupt per-VC flit order.
                self.wheel.push(
                    cycle,
                    cycle + 1,
                    Event::Arrival {
                        link,
                        vc,
                        flit,
                        seq,
                        kind,
                        pre_sent: false,
                    },
                );
                return;
            } else {
                // The awaited retransmission: clear the gate if it decodes.
            }
        }

        let protected = seq.is_some();
        // The fault draw mutates the arena slot in place. An operation-
        // mode-2 duplicate must see the payload *as sent*, so save the
        // two payload words for a potential rewind before the first draw.
        let saved_payload =
            (pre_sent && kind == TransferKind::Original).then(|| self.arena[flit].payload);
        let outcome = self.protocol.hop_transfer(
            link,
            &mut self.arena[flit],
            cycle,
            kind,
            protected,
            &mut self.counters[di],
        );
        match outcome {
            HopOutcome::Delivered | HopOutcome::DeliveredCorrected => {
                if outcome == HopOutcome::DeliveredCorrected {
                    self.stats.ecc_corrections += 1;
                }
                if kind == TransferKind::HopRetransmit {
                    self.routers[di].inputs[in_port.index()][vc as usize].awaiting_retx = None;
                }
                self.accept_flit(dst, in_port, vc, flit, cycle);
                if let Some(seq) = seq {
                    self.counters[di].ack_signals += 1;
                    self.wheel.push(
                        cycle,
                        ack_at,
                        Event::AckSignal {
                            node: link.src,
                            port: link.dir,
                            seq,
                            kind: AckKind::Ack,
                        },
                    );
                }
            }
            HopOutcome::Reject => {
                debug_assert!(seq.is_some(), "reject on a link without ARQ");
                // Operation mode 2: consult the proactive duplicate before
                // falling back to a NACK round trip. Rewind the slot to
                // the as-sent payload so the duplicate's draw is
                // independent of the original's.
                if kind == TransferKind::Original && pre_sent {
                    self.arena[flit].payload =
                        saved_payload.expect("payload saved before the first draw");
                    let o2 = self.protocol.hop_transfer(
                        link,
                        &mut self.arena[flit],
                        cycle,
                        TransferKind::PreRetransmitCopy,
                        protected,
                        &mut self.counters[di],
                    );
                    if o2 != HopOutcome::Reject {
                        if o2 == HopOutcome::DeliveredCorrected {
                            self.stats.ecc_corrections += 1;
                        }
                        self.stats.pre_retransmit_hits += 1;
                        self.wheel.push(
                            cycle,
                            cycle + 1,
                            Event::DirectDeliver {
                                node: dst,
                                in_port,
                                vc,
                                flit,
                            },
                        );
                        if let Some(seq) = seq {
                            self.counters[di].ack_signals += 1;
                            self.wheel.push(
                                cycle,
                                ack_at + 1,
                                Event::AckSignal {
                                    node: link.src,
                                    port: link.dir,
                                    seq,
                                    kind: AckKind::Ack,
                                },
                            );
                        }
                        return;
                    }
                }
                let seq = seq.expect("reject requires hop ARQ");
                // The rejected body is dropped; the retransmission will be
                // re-materialized from the sender's buffered copy.
                self.arena.free(flit);
                self.routers[di].inputs[in_port.index()][vc as usize].awaiting_retx = Some(seq);
                self.stats.hop_nacks += 1;
                self.tel.arq_nacks.inc();
                self.epoch[di].nacks_out += 1;
                self.epoch[si].nacks_in += 1;
                self.counters[di].ack_signals += 1;
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::AckSignal {
                        node: link.src,
                        port: link.dir,
                        seq,
                        kind: AckKind::Nack,
                    },
                );
                self.wheel.push(
                    cycle,
                    ack_at,
                    Event::Credit {
                        node: link.src,
                        port: link.dir,
                        vc,
                    },
                );
                // Suspend the sender's port until the NACK is processed so
                // no younger flit enters the reorder window.
                let out = &mut self.routers[si].outputs[link.dir.index()];
                out.next_free = out.next_free.max(ack_at);
            }
        }
    }

    fn accept_flit(&mut self, node: NodeId, in_port: Direction, vc: u8, flit: FlitRef, cycle: u64) {
        let ni = node.index();
        self.counters[ni].buffer_writes += 1;
        self.epoch[ni].flits_in[in_port.index()] += 1;
        debug_assert!(
            self.routers[ni].inputs[in_port.index()][vc as usize]
                .fifo
                .len()
                < self.config.vc_depth as usize,
            "input VC overflow at {node}:{in_port}:{vc}"
        );
        self.routers[ni].enqueue(in_port.index(), vc as usize, flit, cycle);
    }

    fn handle_eject(&mut self, cycle: u64, node: NodeId, flit: FlitRef) {
        self.counters[node.index()].crc_checks += 1;
        let (packet_id, attempt, is_control) = {
            let f = &self.arena[flit];
            (f.packet, f.attempt, f.class.is_control())
        };
        let expected = if is_control {
            1
        } else {
            self.config.flits_per_packet
        } as usize;
        if self.reassembly.get_mut(packet_id).is_none() {
            self.reassembly.insert(packet_id, Vec::new());
        }
        let entries = self
            .reassembly
            .get_mut(packet_id)
            .expect("entry just ensured");
        let idx = match entries.iter().position(|e| e.attempt == attempt) {
            Some(i) => i,
            None => {
                let flits = self.reassembly_pool.pop().unwrap_or_default();
                entries.push(ReassemblyEntry { attempt, flits });
                entries.len() - 1
            }
        };
        entries[idx].flits.push(flit);
        if entries[idx].flits.len() == expected {
            let entry = entries.swap_remove(idx);
            if entries.is_empty() {
                self.reassembly.remove(packet_id);
            }
            self.finish_packet(cycle, node, entry);
        }
    }

    fn finish_packet(&mut self, cycle: u64, node: NodeId, mut entry: ReassemblyEntry) {
        // Materialize the flit bodies into the reusable staging buffer and
        // release their arena slots — the packet is leaving the network.
        self.eject_scratch.clear();
        for fr in entry.flits.drain(..) {
            self.eject_scratch.push(self.arena[fr]);
            self.arena.free(fr);
        }
        self.reassembly_pool.push(entry.flits);
        let flits = std::mem::take(&mut self.eject_scratch);
        let head = flits[0];
        match head.class {
            PacketClass::RetransmitRequest { of } => {
                // The request reached the original source: re-queue the
                // packet. Stale requests (packet already delivered) are
                // ignored, as real hardware would.
                if let Some((packet, attempts)) = self.pending_packets.get_mut(of) {
                    *attempts = attempts.saturating_add(1);
                    let resend = (*packet, *attempts);
                    self.source_queues[node.index()].push_front(resend);
                    self.stats.packet_retransmissions += 1;
                }
            }
            PacketClass::Data => {
                let outcome =
                    self.protocol
                        .eject_check(&flits, cycle, &mut self.counters[node.index()]);
                match outcome {
                    EjectOutcome::Accept => {
                        self.stats.packets_delivered += 1;
                        self.stats.flits_delivered += flits.len() as u64;
                        self.epoch[node.index()].core_activity_flits += flits.len() as u64;
                        let latency = cycle.saturating_sub(head.injected_at);
                        self.stats.latency.record(latency);
                        self.stats.last_delivery_cycle = cycle;
                        if let Some((packet, _)) = self.pending_packets.remove(head.packet) {
                            if flits
                                .iter()
                                .any(|f| f.payload != packet.payload_for(f.index))
                            {
                                self.stats.silent_corruptions += 1;
                            }
                        }
                        // Attribute the latency to every router on the
                        // packet's X-Y path (src and dst inclusive).
                        let mut r = head.src;
                        loop {
                            let e = &mut self.epoch[r.index()];
                            e.latency_sum += latency;
                            e.latency_count += 1;
                            if r == head.dst {
                                break;
                            }
                            let dir = self.routes.next_hop(r, head.dst);
                            r = self.neighbors.get(r, dir).expect("route stays in mesh");
                        }
                    }
                    EjectOutcome::RequestRetransmit => {
                        self.stats.packets_failed_crc += 1;
                        self.offer_control(node, head.src, head.packet);
                    }
                }
            }
        }
        self.eject_scratch = flits;
    }

    fn inject_phase(&mut self, cycle: u64) {
        let local = Direction::Local.index();
        let vdepth = self.config.vc_depth as usize;
        let vcs = self.config.vcs_per_port;
        for ni in 0..self.routers.len() {
            if self.inject_progress[ni].is_none() {
                if let Some((packet, attempt)) = self.source_queues[ni].pop_front() {
                    // Rotate the starting VC; prefer one with space now.
                    let start = self.next_inject_vc[ni];
                    let mut vc = start;
                    for off in 0..vcs {
                        let cand = (start + off) % vcs;
                        if self.routers[ni].inputs[local][cand as usize].fifo.len() < vdepth {
                            vc = cand;
                            break;
                        }
                    }
                    self.next_inject_vc[ni] = (vc + 1) % vcs;
                    self.inject_progress[ni] = Some(InjectProgress {
                        packet,
                        attempt,
                        next_flit: 0,
                        vc,
                    });
                }
            }
            let Some(prog) = &mut self.inject_progress[ni] else {
                continue;
            };
            if self.routers[ni].inputs[local][prog.vc as usize].fifo.len() >= vdepth {
                continue; // local port back-pressured this cycle
            }
            let flit = prog
                .packet
                .make_flit(prog.next_flit, prog.attempt, &self.crc);
            let flit = self.arena.alloc(flit);
            self.routers[ni].enqueue(local, prog.vc as usize, flit, cycle);
            self.counters[ni].crc_encodes += 1;
            self.counters[ni].buffer_writes += 1;
            self.epoch[ni].flits_in[local] += 1;
            if prog.attempt == 0 {
                self.epoch[ni].core_activity_flits += 1;
            }
            prog.next_flit += 1;
            if prog.next_flit == prog.packet.num_flits {
                self.inject_progress[ni] = None;
            }
        }
    }

    fn sa_st_phase(&mut self, cycle: u64) {
        let Self {
            routers,
            protocol,
            counters,
            epoch,
            stats,
            wheel,
            config,
            arena,
            neighbors,
            tel,
            ..
        } = self;
        let link_latency = config.link_latency as u64;

        for router in routers.iter_mut() {
            // A router with no VC in Active state and no pending resend
            // has no SA/ST work: no switch request can be asserted, so
            // skipping it is exact — arbiters are untouched since grants
            // on empty request sets are no-ops, and `next_free` is only
            // advanced when something is sent.
            router.debug_check_stage_counters();
            if router.active_vcs == 0 && router.outputs.iter().all(|o| o.retx_pending.is_empty()) {
                continue;
            }
            let rid = router.id;
            let ri = rid.index();
            let mut port_used = [false; NUM_PORTS];

            // Phase A: priority resends of NACKed flits. A port with a
            // pending retransmission is dedicated to it (order safety).
            for (out_p, used) in port_used.iter_mut().enumerate() {
                let dir = Direction::from_index(out_p);
                if dir == Direction::Local {
                    continue;
                }
                if cycle < router.outputs[out_p].next_free {
                    *used = true;
                    continue;
                }
                if router.outputs[out_p].retx_pending.is_empty() {
                    continue;
                }
                *used = true;
                let can_send = {
                    let pr = router.outputs[out_p]
                        .retx_pending
                        .front()
                        .expect("non-empty");
                    router.outputs[out_p].vcs[pr.out_vc as usize].credits > 0
                };
                if !can_send {
                    continue;
                }
                let pr = router.outputs[out_p]
                    .retx_pending
                    .pop_front()
                    .expect("non-empty");
                router.outputs[out_p].vcs[pr.out_vc as usize].credits -= 1;
                let link = LinkId { src: rid, dir };
                let delay = protocol.tx_delay(link) as u64;
                let pipeline = protocol.pipeline_latency(link) as u64;
                let pre = protocol.pre_retransmit(link);
                counters[ri].retransmit_sends += 1;
                counters[ri].link_traversals[out_p] += 1 + u64::from(pre);
                epoch[ri].flits_out[out_p] += 1;
                stats.flit_retransmissions += 1;
                tel.arq_retransmits.inc();
                wheel.push(
                    cycle,
                    cycle + link_latency + delay + pipeline,
                    Event::Arrival {
                        link,
                        vc: pr.out_vc,
                        flit: pr.flit,
                        seq: Some(pr.seq),
                        kind: TransferKind::HopRetransmit,
                        pre_sent: pre,
                    },
                );
                router.outputs[out_p].next_free = cycle + 1 + delay + u64::from(pre);
            }

            // Phase B: input-first selection.
            let mut selected: [Option<(usize, usize, u8)>; NUM_PORTS] = [None; NUM_PORTS];
            for (in_p, sel) in selected.iter_mut().enumerate() {
                router.sa_scratch.fill(false);
                let mut any = false;
                for (in_v, ivc) in router.inputs[in_p].iter().enumerate() {
                    let VcState::Active { out_port, out_vc } = ivc.state else {
                        continue;
                    };
                    let Some(front) = ivc.fifo.front() else {
                        continue;
                    };
                    if front.arrived_at >= cycle {
                        continue;
                    }
                    let op = out_port.index();
                    if port_used[op] || cycle < router.outputs[op].next_free {
                        continue;
                    }
                    if out_port != Direction::Local {
                        if router.outputs[op].vcs[out_vc as usize].credits == 0 {
                            continue;
                        }
                        let link = LinkId {
                            src: rid,
                            dir: out_port,
                        };
                        if protocol.hop_arq(link) && router.outputs[op].retx_buffer.is_full() {
                            continue;
                        }
                    }
                    router.sa_scratch[in_v] = true;
                    any = true;
                }
                if !any {
                    continue;
                }
                if let Some(win) = router.sa_input_arbiters[in_p].grant(&router.sa_scratch) {
                    let VcState::Active { out_port, out_vc } = router.inputs[in_p][win].state
                    else {
                        unreachable!("selected VC must be active");
                    };
                    *sel = Some((win, out_port.index(), out_vc));
                }
            }

            // Phase C: output arbitration + switch traversal.
            for (out_p, &used) in port_used.iter().enumerate() {
                if used || cycle < router.outputs[out_p].next_free {
                    continue;
                }
                let mut requests = [false; NUM_PORTS];
                let mut any = false;
                for (in_p, sel) in selected.iter().enumerate() {
                    if let Some((_, op, _)) = sel {
                        if *op == out_p {
                            requests[in_p] = true;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue;
                }
                let in_p = router.sa_output_arbiters[out_p]
                    .grant(&requests)
                    .expect("a request was asserted");
                let (in_v, _, out_vc) = selected[in_p].expect("request implies selection");

                counters[ri].sa_grants += 1;
                let bf = router.inputs[in_p][in_v]
                    .fifo
                    .pop_front()
                    .expect("granted VC holds a flit");
                counters[ri].buffer_reads += 1;
                counters[ri].crossbar_traversals += 1;
                epoch[ri].flits_out[out_p] += 1;
                let is_tail = arena[bf.flit].kind.is_tail();
                if is_tail {
                    router.inputs[in_p][in_v].state = VcState::Idle;
                    router.active_vcs -= 1;
                    if !router.inputs[in_p][in_v].fifo.is_empty() {
                        // The next packet's head is already buffered; it
                        // becomes an RC candidate immediately.
                        router.rc_pending += 1;
                    }
                }
                if !router.inputs[in_p][in_v].occupied() {
                    router.occupied_vcs -= 1;
                }

                // Return the freed buffer slot to the upstream router.
                let in_dir = Direction::from_index(in_p);
                if in_dir != Direction::Local {
                    let upstream = neighbors
                        .get(rid, in_dir)
                        .expect("flit arrived from a neighbor");
                    wheel.push(
                        cycle,
                        cycle + 1,
                        Event::Credit {
                            node: upstream,
                            port: in_dir.opposite(),
                            vc: in_v as u8,
                        },
                    );
                }

                let out_dir = Direction::from_index(out_p);
                if is_tail {
                    router.outputs[out_p].vcs[out_vc as usize].allocated = false;
                }
                if out_dir == Direction::Local {
                    wheel.push(
                        cycle,
                        cycle + 1,
                        Event::Eject {
                            node: rid,
                            flit: bf.flit,
                        },
                    );
                    router.outputs[out_p].next_free = cycle + 1;
                } else {
                    router.outputs[out_p].vcs[out_vc as usize].credits -= 1;
                    let link = LinkId {
                        src: rid,
                        dir: out_dir,
                    };
                    let delay = protocol.tx_delay(link) as u64;
                    let pipeline = protocol.pipeline_latency(link) as u64;
                    let pre = protocol.pre_retransmit(link);
                    counters[ri].link_traversals[out_p] += 1 + u64::from(pre);
                    let seq = if protocol.hop_arq(link) {
                        counters[ri].retransmit_buffer_writes += 1;
                        // The buffer keeps the body *by value*: the wire-side
                        // arena slot is mutated in place by fault draws and
                        // must never alias the canonical retransmit copy.
                        Some(
                            router.outputs[out_p]
                                .retx_buffer
                                .push((arena[bf.flit], out_vc), cycle)
                                .expect("fullness checked during selection"),
                        )
                    } else {
                        None
                    };
                    wheel.push(
                        cycle,
                        cycle + link_latency + delay + pipeline,
                        Event::Arrival {
                            link,
                            vc: out_vc,
                            flit: bf.flit,
                            seq,
                            kind: TransferKind::Original,
                            pre_sent: pre,
                        },
                    );
                    router.outputs[out_p].next_free = cycle + 1 + delay + u64::from(pre);
                }
            }
        }
    }

    fn va_phase(&mut self) {
        for (ri, router) in self.routers.iter_mut().enumerate() {
            if router.occupied_vcs == 0 {
                continue; // no VC holds a packet: VA has nothing to do
            }
            let grants = router.va_stage();
            self.counters[ri].va_allocations += grants;
        }
    }

    fn rc_phase(&mut self, cycle: u64) {
        let Self {
            routers,
            routes,
            arena,
            ..
        } = self;
        for router in routers.iter_mut() {
            if router.occupied_vcs == 0 {
                continue; // no buffered head flit: RC has nothing to do
            }
            router.rc_stage(cycle, routes, arena);
        }
    }

    fn sample_phase(&mut self) {
        for (ri, router) in self.routers.iter().enumerate() {
            self.epoch[ri].sample_cycle(router.occupied_input_vcs() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_control::PerfectLink;

    fn net_4x4() -> Network<PerfectLink> {
        let config = NocConfig::builder().mesh(4, 4).build();
        Network::new(config, PerfectLink::new(), 42)
    }

    #[test]
    fn single_packet_delivery() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(net.run_until_quiescent(500));
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().packets_injected, 1);
        assert_eq!(net.stats().flits_delivered, 4);
        assert_eq!(net.stats().silent_corruptions, 0);
        assert_eq!(net.stats().packets_failed_crc, 0);
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        // 1 hop: inject(t) → RC(t+1) → VA(t+2) → SA/ST(t+3) → wire →
        // arrive(t+4) … 4 cycles per router stage per hop, plus ejection,
        // plus 3 serialization cycles for the 3 trailing flits.
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(1, 0));
        assert!(net.run_until_quiescent(200));
        let lat = net.stats().latency.mean();
        // 2 routers × 4 stages + 1 link + 1 eject + 3 serialization = 13.
        assert!(
            (10.0..=16.0).contains(&lat),
            "unexpected zero-load latency {lat}"
        );
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut near = net_4x4();
        let mesh = near.mesh();
        near.offer(mesh.node_at(0, 0), mesh.node_at(1, 0));
        assert!(near.run_until_quiescent(300));

        let mut far = net_4x4();
        far.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(far.run_until_quiescent(300));

        assert!(far.stats().latency.mean() > near.stats().latency.mean());
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut net = net_4x4();
        // All-to-all traffic.
        for i in 0..16u16 {
            for j in 0..16u16 {
                if i != j {
                    net.offer(NodeId(i), NodeId(j));
                }
            }
        }
        let offered = net.stats().packets_injected;
        assert_eq!(offered, 16 * 15);
        assert!(net.run_until_quiescent(20_000), "network did not drain");
        assert_eq!(net.stats().packets_delivered, offered);
        assert_eq!(net.stats().silent_corruptions, 0);
    }

    #[test]
    fn quiescent_initially_and_after_drain() {
        let mut net = net_4x4();
        assert!(net.is_quiescent());
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(2, 2));
        assert!(!net.is_quiescent());
        assert!(net.run_until_quiescent(500));
    }

    #[test]
    fn conservation_of_flits() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        for x in 0..4u16 {
            net.offer(mesh.node_at(x, 0), mesh.node_at(x, 3));
        }
        assert!(net.run_until_quiescent(2_000));
        let s = net.stats();
        assert_eq!(
            s.flits_delivered,
            s.packets_delivered * 4,
            "all delivered packets carry 4 flits"
        );
        // Every injected flit was CRC-encoded exactly once.
        let encodes: u64 = net.counters().iter().map(|c| c.crc_encodes).sum();
        assert_eq!(encodes, s.packets_injected * 4);
        let checks: u64 = net.counters().iter().map(|c| c.crc_checks).sum();
        assert_eq!(checks, s.flits_delivered);
    }

    #[test]
    fn epoch_stats_accumulate_and_reset() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 0));
        for _ in 0..50 {
            net.step();
        }
        let src = mesh.node_at(0, 0).index();
        assert!(net.epoch_stats()[src].cycles == 50);
        assert!(net.epoch_stats()[src].flits_in[Direction::Local.index()] > 0);
        net.reset_epoch_stats();
        assert_eq!(net.epoch_stats()[src].cycles, 0);
        assert_eq!(net.epoch_stats()[src].flits_in[Direction::Local.index()], 0);
    }

    #[test]
    fn per_router_latency_attribution_covers_path() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(2, 0);
        net.offer(src, dst);
        assert!(net.run_until_quiescent(500));
        for node in [src, mesh.node_at(1, 0), dst] {
            assert_eq!(
                net.epoch_stats()[node.index()].latency_count,
                1,
                "router {node} missing latency attribution"
            );
        }
        assert_eq!(
            net.epoch_stats()[mesh.node_at(3, 3).index()].latency_count,
            0
        );
    }

    #[test]
    #[should_panic(expected = "source and destination must differ")]
    fn offer_to_self_panics() {
        let mut net = net_4x4();
        net.offer(NodeId(0), NodeId(0));
    }

    #[test]
    fn saturating_throughput_bounded_by_ejection() {
        // Everyone sends to node (1,1): ejection bandwidth (1 flit/cycle)
        // bounds aggregate delivery.
        let mut net = net_4x4();
        let mesh = net.mesh();
        let hot = mesh.node_at(1, 1);
        for round in 0..10 {
            for n in mesh.nodes() {
                if n != hot {
                    net.offer(n, hot);
                }
            }
            let _ = round;
        }
        assert!(net.run_until_quiescent(50_000));
        assert_eq!(net.stats().packets_delivered, 150);
    }

    #[test]
    fn counters_track_crossbar_and_links() {
        let mut net = net_4x4();
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(1, 0));
        assert!(net.run_until_quiescent(500));
        let src = mesh.node_at(0, 0).index();
        let c = &net.counters()[src];
        // 4 flits crossed the source's crossbar and its East link.
        assert_eq!(c.crossbar_traversals, 4);
        assert_eq!(c.link_traversals[Direction::East.index()], 4);
        assert_eq!(c.buffer_reads, 4);
        assert_eq!(c.buffer_writes, 4);
    }
}

#[cfg(test)]
mod arq_tests {
    //! Direct exercise of the hop-level ARQ machinery (retransmit
    //! buffers, NACK round trips, go-back-N ordering) with a scripted,
    //! deterministic error control.

    use super::*;
    use crate::error_control::ScriptedErrorControl;

    fn net_with(protocol: ScriptedErrorControl) -> Network<ScriptedErrorControl> {
        let config = NocConfig::builder().mesh(4, 4).build();
        Network::new(config, protocol, 99)
    }

    #[test]
    fn reliable_arq_links_ack_everything() {
        let mut net = net_with(ScriptedErrorControl::reliable());
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
        assert!(net.run_until_quiescent(1_000));
        let s = net.stats();
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.hop_nacks, 0);
        assert_eq!(s.flit_retransmissions, 0);
        // Every inter-router hop buffered a copy and got an ACK back.
        let copies: u64 = net
            .counters()
            .iter()
            .map(|c| c.retransmit_buffer_writes)
            .sum();
        let acks: u64 = net.counters().iter().map(|c| c.ack_signals).sum();
        assert!(copies > 0);
        assert_eq!(acks, copies, "one ACK per buffered transfer");
    }

    #[test]
    fn rejected_flits_are_retransmitted_and_delivered_intact() {
        let mut net = net_with(ScriptedErrorControl::reject_every(7));
        for i in 0..8u16 {
            net.offer(NodeId(i), NodeId(15 - i));
        }
        assert!(
            net.run_until_quiescent(10_000),
            "must drain despite rejects"
        );
        let s = net.stats();
        assert_eq!(s.packets_delivered, 8);
        assert!(s.hop_nacks > 0, "rejects must raise NACKs");
        assert!(s.flit_retransmissions > 0, "NACKs must trigger resends");
        assert_eq!(s.silent_corruptions, 0);
        assert_eq!(s.packets_failed_crc, 0, "hop ARQ hides errors end-to-end");
    }

    #[test]
    fn heavy_rejection_still_converges_in_order() {
        // Every 3rd transfer rejected: go-back-N churn is constant; the
        // network must still deliver everything without order corruption
        // (order violations would panic the router state machine in
        // debug builds or surface as CRC failures).
        let mut net = net_with(ScriptedErrorControl::reject_every(3));
        let mesh = net.mesh();
        for x in 0..4u16 {
            for y in 0..4u16 {
                if (x, y) != (3, 3) {
                    net.offer(mesh.node_at(x, y), mesh.node_at(3, 3));
                }
            }
        }
        assert!(net.run_until_quiescent(30_000));
        let s = net.stats();
        assert_eq!(s.packets_delivered, 15);
        assert_eq!(s.silent_corruptions, 0);
        assert!(
            s.flit_retransmissions >= s.hop_nacks / 2,
            "most NACKs must produce a resend"
        );
    }

    #[test]
    fn pre_retransmission_rescues_rejects_without_nacks() {
        // With proactive duplicates and every 6th transfer rejected, the
        // duplicate (next transfer, not divisible by 6) always rescues:
        // no NACK round trips at all.
        let mut net = net_with(ScriptedErrorControl::reject_every(6).with_pre_retransmit(true));
        let mesh = net.mesh();
        net.offer(mesh.node_at(0, 0), mesh.node_at(3, 0));
        net.offer(mesh.node_at(0, 1), mesh.node_at(3, 1));
        assert!(net.run_until_quiescent(2_000));
        let s = net.stats();
        assert_eq!(s.packets_delivered, 2);
        assert!(s.pre_retransmit_hits > 0, "duplicates must be consulted");
        assert_eq!(s.hop_nacks, 0, "duplicates preempt the NACK path");
    }

    #[test]
    fn tx_delay_slows_but_preserves_delivery() {
        let mut fast = net_with(ScriptedErrorControl::reliable());
        let mut slow = net_with(ScriptedErrorControl::reliable().with_tx_delay(2));
        let mesh = fast.mesh();
        for net in [&mut fast, &mut slow] {
            net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
            assert!(net.run_until_quiescent(2_000));
            assert_eq!(net.stats().packets_delivered, 1);
        }
        // 6 hops × 2 extra cycles each = +12 cycles of pure stall.
        let delta = slow.stats().latency.mean() - fast.stats().latency.mean();
        assert!(
            (10.0..=30.0).contains(&delta),
            "tx_delay=2 should add ~12+ cycles, got {delta}"
        );
    }

    #[test]
    fn retransmissions_consume_credits_correctly() {
        // Saturating traffic with rejects: if credits leaked, the network
        // would wedge long before draining.
        let mut net = net_with(ScriptedErrorControl::reject_every(4));
        let mesh = net.mesh();
        for round in 0..20 {
            for i in 0..16u16 {
                let dst = NodeId((i + 5) % 16);
                if NodeId(i) != dst {
                    net.offer(NodeId(i), dst);
                }
            }
            let _ = round;
        }
        assert!(net.run_until_quiescent(60_000), "credit leak would wedge");
        assert_eq!(net.stats().packets_delivered, net.stats().packets_injected);
        let _ = mesh;
    }
}
