//! Routing functions.
//!
//! Every topology in the zoo routes dimension-ordered: X-Y on the 2D
//! mesh (the paper's configuration), wrap-aware X-Y with date-line
//! virtual-channel classes on tori, and X-Y-Z on the 3D mesh. All of
//! them are deterministic and minimal; the per-topology next hop and
//! VC class come from [`Topo::min_route`].

use crate::topology::{Direction, Mesh, NodeId, Topo, VcClass};

/// Computes the X-Y output port at router `current` for a packet headed to
/// `dst` on a 2D mesh.
///
/// Returns [`Direction::Local`] when `current == dst` (eject).
///
/// # Example
///
/// ```
/// use noc_sim::routing::xy_route;
/// use noc_sim::topology::{Direction, Mesh};
///
/// let mesh = Mesh::new(8, 8);
/// let src = mesh.node_at(1, 1);
/// let dst = mesh.node_at(4, 6);
/// // X first…
/// assert_eq!(xy_route(mesh, src, dst), Direction::East);
/// // …then Y once the column matches.
/// let mid = mesh.node_at(4, 1);
/// assert_eq!(xy_route(mesh, mid, dst), Direction::South);
/// assert_eq!(xy_route(mesh, dst, dst), Direction::Local);
/// ```
pub fn xy_route(mesh: Mesh, current: NodeId, dst: NodeId) -> Direction {
    let c = mesh.coord(current);
    let d = mesh.coord(dst);
    if c.x < d.x {
        Direction::East
    } else if c.x > d.x {
        Direction::West
    } else if c.y < d.y {
        Direction::South
    } else if c.y > d.y {
        Direction::North
    } else {
        Direction::Local
    }
}

/// The minimal-route output port and date-line VC class at `current`
/// for a packet headed to `dst`, on any topology.
///
/// Identical to [`xy_route`] (with class [`VcClass::Any`]) on a 2D
/// mesh.
pub fn min_route(topo: impl Into<Topo>, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
    topo.into().min_route(current, dst)
}

/// Enumerates the routers a dimension-order-routed packet visits from
/// `src` to `dst`, inclusive of both endpoints.
///
/// Used by the reward function, which attributes a delivered packet's
/// end-to-end latency to every router on its path. (The name reflects
/// the 2D mesh's X-Y order; tori and the 3D mesh walk their own
/// dimension order.)
pub fn xy_path(topo: impl Into<Topo>, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let topo = topo.into();
    let mut path = Vec::with_capacity(topo.hop_distance(src, dst) as usize + 1);
    let mut current = src;
    path.push(current);
    while current != dst {
        let (dir, _) = topo.min_route(current, dst);
        current = topo
            .neighbor(current, dir)
            .expect("minimal route never walks off the topology");
        path.push(current);
    }
    path
}

/// Node count up to which [`RouteTable`] materializes the full
/// `current × dst` matrix (one byte per pair, so ≤ 1 MiB).
/// Larger networks fall back to computing the route on demand.
const DENSE_ROUTE_LIMIT: usize = 1024;

/// Bit position of the VC class in a packed dense route byte (the low
/// three bits hold the port index 0..=6).
const CLASS_SHIFT: u32 = 3;

/// Precomputed minimal-route next-hop lookup.
///
/// [`Topo::min_route`] derives endpoint coordinates (divisions) on
/// every call; route computation runs once per packet per hop and the
/// latency-attribution walk once per node on every delivered packet's
/// path. The table answers the same query with one index. Each dense
/// byte packs the output port index in its low three bits and the
/// [`VcClass`] above them; on a 2D mesh every class is `Any` (0), so
/// the stored bytes are identical to the historical direction-only
/// table.
#[derive(Debug, Clone)]
pub struct RouteTable {
    topo: Topo,
    /// `dense[current * n + dst]` packs `port | class << CLASS_SHIFT`.
    dense: Option<Vec<u8>>,
    n: usize,
}

impl RouteTable {
    /// Builds the lookup structures for `topo`.
    pub fn new(topo: impl Into<Topo>) -> Self {
        let topo = topo.into();
        let n = topo.num_nodes();
        let dense = (n <= DENSE_ROUTE_LIMIT).then(|| {
            let mut table = vec![0u8; n * n];
            for cur in topo.nodes() {
                for dst in topo.nodes() {
                    let (dir, class) = topo.min_route(cur, dst);
                    table[cur.index() * n + dst.index()] =
                        dir.index() as u8 | (class.index() as u8) << CLASS_SHIFT;
                }
            }
            table
        });
        Self { topo, dense, n }
    }

    /// The minimal-route output port at `current` for a packet headed
    /// to `dst`. Identical to [`Topo::min_route`]'s direction on the
    /// table's topology.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology the table was
    /// built for.
    #[inline]
    pub fn next_hop(&self, current: NodeId, dst: NodeId) -> Direction {
        if let Some(dense) = &self.dense {
            return Direction::from_index(
                (dense[current.index() * self.n + dst.index()] & 0x07) as usize,
            );
        }
        self.topo.min_route(current, dst).0
    }

    /// The minimal-route output port plus the date-line VC class of
    /// the hop. Identical to [`Topo::min_route`] on the table's
    /// topology.
    #[inline]
    pub fn next_hop_class(&self, current: NodeId, dst: NodeId) -> (Direction, VcClass) {
        if let Some(dense) = &self.dense {
            let b = dense[current.index() * self.n + dst.index()];
            return (
                Direction::from_index((b & 0x07) as usize),
                VcClass::from_index((b >> CLASS_SHIFT) as usize),
            );
        }
        self.topo.min_route(current, dst)
    }
}

/// Sentinel port index for "no route" entries in [`FaultRoutes`].
const UNREACHABLE_PORT: u8 = 0xFF;

/// Fault-adaptive next-hop table: full-graph up*/down* routing over the
/// live sub-topology.
///
/// Once hard faults remove links or routers, dimension-order routing is
/// no longer sound (it would walk into dead regions), so the network
/// switches to classic up*/down* routes. Every live node gets a rank
/// `(BFS level, node id)` from a breadth-first traversal of its live
/// connected component (root = smallest live id); every live link is
/// oriented "up" toward its lower-ranked end. A route first climbs
/// up-links ("up" phase, rank strictly decreasing) and then descends
/// down-links ("down" phase, rank strictly increasing) — **all** live
/// links are usable, not just tree edges, so capacity degrades
/// gradually with the fault count instead of collapsing to a spanning
/// tree. Because no route ever turns from a down traversal back onto an
/// up traversal, the channel-dependency graph is acyclic (the classic
/// up*/down* argument) and the scheme is deadlock-free without extra
/// virtual channels; it doubles as its own escape layer. The argument
/// needs only undirected adjacency, so it covers every topology in the
/// zoo — wrap-around links and vertical links are just more edges to
/// orient.
///
/// The table is phase-oblivious (one port per `(current, dst)`), so it
/// must be *suffix-consistent*: a node with any pure-down route to the
/// destination always takes its shortest one (every later node then
/// also has one), and a node without one climbs along the up-link that
/// minimizes the remaining legal distance. Either phase is strictly
/// monotone in rank, so routes never loop.
///
/// Construction is fully deterministic so the production and reference
/// simulators can rebuild identical tables independently: BFS explores
/// neighbors in port order (N, E, S, W, then Up, Down where present)
/// and distance ties break toward the smallest port index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRoutes {
    /// `table[current * n + dst]` is the output port index, or
    /// [`UNREACHABLE_PORT`] when no live route exists.
    table: Vec<u8>,
    n: usize,
    unreachable_pairs: u64,
}

impl FaultRoutes {
    /// Builds the up*/down* table over the live sub-topology.
    ///
    /// `node_alive[i]` marks router `i` usable; `link_alive(node, dir)`
    /// marks the channel leaving `node` in `dir` usable and must be
    /// symmetric (`link_alive(u, d) == link_alive(v, d.opposite())` for
    /// neighbors `u`, `v`). Links touching a dead router must also be
    /// reported dead.
    ///
    /// # Panics
    ///
    /// Panics if `node_alive.len() != topo.num_nodes()`.
    pub fn compute<F>(topo: impl Into<Topo>, node_alive: &[bool], link_alive: F) -> Self
    where
        F: Fn(NodeId, Direction) -> bool,
    {
        let topo = topo.into();
        let compass = topo.compass();
        let n = topo.num_nodes();
        assert_eq!(node_alive.len(), n, "liveness vector must cover the mesh");
        // BFS forest: component label and level (root distance) per node.
        let mut level: Vec<u16> = vec![u16::MAX; n];
        let mut comp: Vec<u16> = vec![u16::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for root in topo.nodes() {
            if !node_alive[root.index()] || comp[root.index()] != u16::MAX {
                continue;
            }
            comp[root.index()] = root.0;
            level[root.index()] = 0;
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                for &dir in compass {
                    if !link_alive(u, dir) {
                        continue;
                    }
                    let Some(v) = topo.neighbor(u, dir) else {
                        continue;
                    };
                    if node_alive[v.index()] && comp[v.index()] == u16::MAX {
                        comp[v.index()] = root.0;
                        level[v.index()] = level[u.index()] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }

        // Rank orients every live link: its "up" end is the smaller
        // `(level, id)`. Up traversals strictly decrease rank, down
        // traversals strictly increase it.
        let rank = |u: NodeId| (level[u.index()], u.0);
        // Live nodes in increasing rank order, for the up-phase DP.
        let mut by_rank: Vec<NodeId> = topo.nodes().filter(|&u| node_alive[u.index()]).collect();
        by_rank.sort_by_key(|&u| rank(u));

        let mut table = vec![UNREACHABLE_PORT; n * n];
        let mut dist_down: Vec<u32> = Vec::new();
        let mut dist_any: Vec<u32> = Vec::new();
        for dst in topo.nodes() {
            if !node_alive[dst.index()] {
                continue;
            }
            // Pure-down distance to `dst`: BFS from `dst` across
            // reversed down traversals (a hop u→x with rank(u) <
            // rank(x) may end a pure-down route iff x already can).
            dist_down.clear();
            dist_down.resize(n, u32::MAX);
            dist_down[dst.index()] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(x) = queue.pop_front() {
                for &dir in compass {
                    if !link_alive(x, dir) {
                        continue;
                    }
                    let Some(u) = topo.neighbor(x, dir) else {
                        continue;
                    };
                    if node_alive[u.index()]
                        && rank(u) < rank(x)
                        && dist_down[u.index()] == u32::MAX
                    {
                        dist_down[u.index()] = dist_down[x.index()] + 1;
                        queue.push_back(u);
                    }
                }
            }
            // Legal (up* then down*) distance: a route either is pure
            // down, or first climbs one up-link. Up-links strictly
            // decrease rank, so increasing-rank order is a valid DP
            // order.
            dist_any.clear();
            dist_any.resize(n, u32::MAX);
            for &u in &by_rank {
                if comp[u.index()] != comp[dst.index()] {
                    continue;
                }
                let mut best = dist_down[u.index()];
                for &dir in compass {
                    if !link_alive(u, dir) {
                        continue;
                    }
                    let Some(v) = topo.neighbor(u, dir) else {
                        continue;
                    };
                    if node_alive[v.index()] && rank(v) < rank(u) && dist_any[v.index()] != u32::MAX
                    {
                        best = best.min(dist_any[v.index()] + 1);
                    }
                }
                dist_any[u.index()] = best;
            }
            // Next hops: prefer the shortest pure-down continuation
            // (suffix-consistent — every node after it also has one);
            // otherwise climb the up-link on a shortest legal route.
            // Ties break toward the smallest port index.
            for &u in &by_rank {
                if u == dst || comp[u.index()] != comp[dst.index()] {
                    continue;
                }
                let downhill = dist_down[u.index()] != u32::MAX;
                for &dir in compass {
                    if !link_alive(u, dir) {
                        continue;
                    }
                    let Some(v) = topo.neighbor(u, dir) else {
                        continue;
                    };
                    if !node_alive[v.index()] {
                        continue;
                    }
                    let good = if downhill {
                        rank(v) > rank(u)
                            && dist_down[v.index()] != u32::MAX
                            && dist_down[v.index()] + 1 == dist_down[u.index()]
                    } else {
                        rank(v) < rank(u)
                            && dist_any[v.index()] != u32::MAX
                            && dist_any[v.index()] + 1 == dist_any[u.index()]
                    };
                    if good {
                        table[u.index() * n + dst.index()] = dir.index() as u8;
                        break;
                    }
                }
                debug_assert_ne!(
                    table[u.index() * n + dst.index()],
                    UNREACHABLE_PORT,
                    "connected pair {u}→{dst} must get a next hop"
                );
            }
            table[dst.index() * n + dst.index()] = Direction::Local.index() as u8;
        }

        let mut unreachable_pairs = 0u64;
        for u in topo.nodes() {
            for v in topo.nodes() {
                if u != v
                    && node_alive[u.index()]
                    && node_alive[v.index()]
                    && comp[u.index()] != comp[v.index()]
                {
                    unreachable_pairs += 1;
                }
            }
        }

        Self {
            table,
            n,
            unreachable_pairs,
        }
    }

    /// The output port at `current` for a packet headed to `dst`, or
    /// `None` when no live route exists (dead endpoint or partitioned
    /// component). Returns `Local` when `current == dst`.
    #[inline]
    pub fn next_hop(&self, current: NodeId, dst: NodeId) -> Option<Direction> {
        let p = self.table[current.index() * self.n + dst.index()];
        if p == UNREACHABLE_PORT {
            None
        } else {
            Some(Direction::from_index(p as usize))
        }
    }

    /// Whether a live route from `a` to `b` exists (`true` for `a == b`
    /// on a live node).
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.table[a.index() * self.n + b.index()] != UNREACHABLE_PORT
    }

    /// Number of ordered live node pairs with no route between them.
    pub fn unreachable_pairs(&self) -> u64 {
        self.unreachable_pairs
    }

    /// Test-only corruption hook: overwrite a table entry so the
    /// verify-mode reroute-consistency checker can be proven to fire.
    #[cfg(all(test, feature = "verify"))]
    pub(crate) fn corrupt_entry(&mut self, current: NodeId, dst: NodeId, port: Direction) {
        self.table[current.index() * self.n + dst.index()] = port.index() as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::VcClass;

    #[test]
    fn route_to_self_is_local() {
        let mesh = Mesh::new(8, 8);
        for node in mesh.nodes() {
            assert_eq!(xy_route(mesh, node, node), Direction::Local);
        }
    }

    #[test]
    fn x_dimension_resolved_first() {
        let mesh = Mesh::new(8, 8);
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(7, 7);
        assert_eq!(xy_route(mesh, src, dst), Direction::East);
        let col = mesh.node_at(7, 0);
        assert_eq!(xy_route(mesh, col, dst), Direction::South);
    }

    #[test]
    fn west_and_north_used_when_needed() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(
            xy_route(mesh, mesh.node_at(5, 5), mesh.node_at(2, 5)),
            Direction::West
        );
        assert_eq!(
            xy_route(mesh, mesh.node_at(5, 5), mesh.node_at(5, 2)),
            Direction::North
        );
    }

    #[test]
    fn min_route_matches_xy_route_on_mesh() {
        let mesh = Mesh::new(5, 4);
        for cur in mesh.nodes() {
            for dst in mesh.nodes() {
                assert_eq!(
                    min_route(mesh, cur, dst),
                    (xy_route(mesh, cur, dst), VcClass::Any)
                );
            }
        }
    }

    #[test]
    fn path_endpoints_and_length() {
        let mesh = Mesh::new(8, 8);
        let src = mesh.node_at(1, 2);
        let dst = mesh.node_at(6, 7);
        let path = xy_path(mesh, src, dst);
        assert_eq!(path.first(), Some(&src));
        assert_eq!(path.last(), Some(&dst));
        assert_eq!(path.len(), mesh.hop_distance(src, dst) as usize + 1);
    }

    #[test]
    fn path_to_self_is_singleton() {
        let mesh = Mesh::new(4, 4);
        let n = mesh.node_at(2, 2);
        assert_eq!(xy_path(mesh, n, n), vec![n]);
    }

    #[test]
    fn path_on_torus_takes_the_short_way() {
        let topo = Topo::torus(8, 8);
        let src = topo.node_at(7, 0);
        let dst = topo.node_at(1, 0);
        let path = xy_path(topo, src, dst);
        // 7 → 0 → 1 across the wrap link: 3 nodes, not 7.
        assert_eq!(path.len(), 3);
        assert_eq!(path[1], topo.node_at(0, 0));
    }

    #[test]
    fn route_table_matches_xy_route_exhaustively() {
        // 4×4 exercises the dense table; a synthetic over-limit mesh
        // exercises the compute-on-demand fallback.
        let mesh = Mesh::new(4, 4);
        let table = RouteTable::new(mesh);
        for cur in mesh.nodes() {
            for dst in mesh.nodes() {
                assert_eq!(table.next_hop(cur, dst), xy_route(mesh, cur, dst));
                assert_eq!(
                    table.next_hop_class(cur, dst),
                    (xy_route(mesh, cur, dst), VcClass::Any)
                );
            }
        }
    }

    #[test]
    fn route_table_matches_min_route_on_every_topology() {
        for topo in [
            Topo::torus(4, 4),
            Topo::torus(2, 5),
            Topo::ftorus(4, 6),
            Topo::mesh3d(3, 3, 3),
        ] {
            let table = RouteTable::new(topo);
            for cur in topo.nodes() {
                for dst in topo.nodes() {
                    assert_eq!(
                        table.next_hop_class(cur, dst),
                        topo.min_route(cur, dst),
                        "{} {cur}→{dst}",
                        topo.encode()
                    );
                }
            }
        }
    }

    #[test]
    fn route_table_fallback_matches_on_large_meshes() {
        for topo in [
            Topo::mesh(64, 33),
            Topo::torus(64, 33),
            Topo::mesh3d(16, 16, 9),
        ] {
            let table = RouteTable::new(topo);
            assert!(
                table.dense.is_none(),
                "{}: large network must use the fallback",
                topo.encode()
            );
            let n = topo.num_nodes() as u16;
            for cur in [0u16, 1, 63, 64, 1000, n - 1] {
                for dst in [0u16, 31, 64, 100, n / 2, n - 1] {
                    let (cur, dst) = (NodeId(cur), NodeId(dst));
                    assert_eq!(table.next_hop_class(cur, dst), topo.min_route(cur, dst));
                }
            }
        }
    }

    #[test]
    fn dense_limit_includes_radix_32() {
        // 32×32 = 1024 nodes sits exactly on the dense limit.
        let table = RouteTable::new(Topo::torus(32, 32));
        assert!(table.dense.is_some());
    }

    /// Walks fault routes from `src` to `dst`, panicking on divergence.
    fn walk_fault_route(topo: Topo, routes: &FaultRoutes, src: NodeId, dst: NodeId) -> usize {
        let mut current = src;
        let mut hops = 0;
        while current != dst {
            let dir = routes
                .next_hop(current, dst)
                .expect("reachable pair must have a route");
            assert_ne!(dir, Direction::Local, "Local before reaching dst");
            current = topo.neighbor(current, dir).expect("route stays on mesh");
            hops += 1;
            assert!(hops <= topo.num_nodes(), "route loops");
        }
        hops
    }

    #[test]
    fn fault_routes_deliver_on_healthy_topologies() {
        for topo in [
            Topo::mesh(4, 4),
            Topo::torus(4, 4),
            Topo::ftorus(3, 4),
            Topo::mesh3d(3, 2, 3),
        ] {
            let alive = vec![true; topo.num_nodes()];
            let routes = FaultRoutes::compute(topo, &alive, |_, _| true);
            assert_eq!(routes.unreachable_pairs(), 0, "{}", topo.encode());
            for src in topo.nodes() {
                for dst in topo.nodes() {
                    assert!(routes.reachable(src, dst));
                    walk_fault_route(topo, &routes, src, dst);
                }
            }
            for node in topo.nodes() {
                assert_eq!(routes.next_hop(node, node), Some(Direction::Local));
            }
        }
    }

    #[test]
    fn fault_routes_avoid_dead_router() {
        for topo in [Topo::mesh(4, 4), Topo::torus(4, 4), Topo::mesh3d(4, 4, 2)] {
            let dead = topo.node_at(1, 1);
            let mut alive = vec![true; topo.num_nodes()];
            alive[dead.index()] = false;
            let link_ok = |node: NodeId, dir: Direction| {
                topo.neighbor(node, dir)
                    .is_some_and(|n| n != dead && node != dead)
            };
            let routes = FaultRoutes::compute(topo, &alive, link_ok);
            assert_eq!(
                routes.unreachable_pairs(),
                0,
                "{} minus one node stays connected",
                topo.encode()
            );
            for src in topo.nodes().filter(|&n| n != dead) {
                for dst in topo.nodes().filter(|&n| n != dead) {
                    let mut current = src;
                    while current != dst {
                        let dir = routes.next_hop(current, dst).unwrap();
                        current = topo.neighbor(current, dir).unwrap();
                        assert_ne!(current, dead, "route walked through the dead router");
                    }
                }
                assert!(!routes.reachable(src, dead));
                assert!(!routes.reachable(dead, src));
            }
        }
    }

    #[test]
    fn fault_routes_report_partition() {
        // 1×4 line mesh with the middle link cut: {0,1} | {2,3}.
        let mesh = Mesh::new(4, 1);
        let alive = vec![true; 4];
        let cut = |node: NodeId, dir: Direction| {
            !((node == NodeId(1) && dir == Direction::East)
                || (node == NodeId(2) && dir == Direction::West))
        };
        let routes = FaultRoutes::compute(mesh, &alive, cut);
        // 2 nodes on each side: 2·(2·2) ordered cross pairs.
        assert_eq!(routes.unreachable_pairs(), 8);
        assert!(routes.reachable(NodeId(0), NodeId(1)));
        assert!(!routes.reachable(NodeId(0), NodeId(2)));
        assert!(routes.next_hop(NodeId(1), NodeId(3)).is_none());
        walk_fault_route(Topo::mesh(4, 1), &routes, NodeId(2), NodeId(3));
    }

    #[test]
    fn path_turns_at_most_once() {
        // X-Y routing: the direction sequence changes at most once
        // (E/W segment then N/S segment).
        let mesh = Mesh::new(8, 8);
        let path = xy_path(mesh, mesh.node_at(0, 7), mesh.node_at(7, 0));
        let mut changes = 0;
        let mut prev: Option<Direction> = None;
        for w in path.windows(2) {
            let dir = xy_route(mesh, w[0], w[1]);
            if prev.is_some() && prev != Some(dir) {
                changes += 1;
            }
            prev = Some(dir);
        }
        assert!(changes <= 1, "X-Y path turned {changes} times");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn every_step_decreases_distance(a in 0u16..64, b in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let (src, dst) = (NodeId(a), NodeId(b));
            let mut current = src;
            let mut steps = 0;
            while current != dst {
                let before = mesh.hop_distance(current, dst);
                let dir = xy_route(mesh, current, dst);
                current = mesh.neighbor(current, dir).expect("route stays on mesh");
                prop_assert_eq!(mesh.hop_distance(current, dst), before - 1);
                steps += 1;
                prop_assert!(steps <= 14, "route did not converge");
            }
        }

        #[test]
        fn path_has_no_repeated_nodes(a in 0u16..64, b in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let path = xy_path(mesh, NodeId(a), NodeId(b));
            let mut sorted: Vec<_> = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len());
        }
    }
}
