//! Routing functions.
//!
//! The paper's configuration uses deterministic X-Y dimension-order
//! routing, which is deadlock-free on a mesh without virtual-channel
//! restrictions: a packet first travels along the X dimension to the
//! destination column, then along Y to the destination row.

use crate::topology::{Direction, Mesh, NodeId};

/// Computes the X-Y output port at router `current` for a packet headed to
/// `dst`.
///
/// Returns [`Direction::Local`] when `current == dst` (eject).
///
/// # Example
///
/// ```
/// use noc_sim::routing::xy_route;
/// use noc_sim::topology::{Direction, Mesh};
///
/// let mesh = Mesh::new(8, 8);
/// let src = mesh.node_at(1, 1);
/// let dst = mesh.node_at(4, 6);
/// // X first…
/// assert_eq!(xy_route(mesh, src, dst), Direction::East);
/// // …then Y once the column matches.
/// let mid = mesh.node_at(4, 1);
/// assert_eq!(xy_route(mesh, mid, dst), Direction::South);
/// assert_eq!(xy_route(mesh, dst, dst), Direction::Local);
/// ```
pub fn xy_route(mesh: Mesh, current: NodeId, dst: NodeId) -> Direction {
    let c = mesh.coord(current);
    let d = mesh.coord(dst);
    if c.x < d.x {
        Direction::East
    } else if c.x > d.x {
        Direction::West
    } else if c.y < d.y {
        Direction::South
    } else if c.y > d.y {
        Direction::North
    } else {
        Direction::Local
    }
}

/// Enumerates the routers an X-Y-routed packet visits from `src` to `dst`,
/// inclusive of both endpoints.
///
/// Used by the reward function, which attributes a delivered packet's
/// end-to-end latency to every router on its path.
pub fn xy_path(mesh: Mesh, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(mesh.hop_distance(src, dst) as usize + 1);
    let mut current = src;
    path.push(current);
    while current != dst {
        let dir = xy_route(mesh, current, dst);
        current = mesh
            .neighbor(current, dir)
            .expect("xy_route never walks off the mesh");
        path.push(current);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_to_self_is_local() {
        let mesh = Mesh::new(8, 8);
        for node in mesh.nodes() {
            assert_eq!(xy_route(mesh, node, node), Direction::Local);
        }
    }

    #[test]
    fn x_dimension_resolved_first() {
        let mesh = Mesh::new(8, 8);
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(7, 7);
        assert_eq!(xy_route(mesh, src, dst), Direction::East);
        let col = mesh.node_at(7, 0);
        assert_eq!(xy_route(mesh, col, dst), Direction::South);
    }

    #[test]
    fn west_and_north_used_when_needed() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(
            xy_route(mesh, mesh.node_at(5, 5), mesh.node_at(2, 5)),
            Direction::West
        );
        assert_eq!(
            xy_route(mesh, mesh.node_at(5, 5), mesh.node_at(5, 2)),
            Direction::North
        );
    }

    #[test]
    fn path_endpoints_and_length() {
        let mesh = Mesh::new(8, 8);
        let src = mesh.node_at(1, 2);
        let dst = mesh.node_at(6, 7);
        let path = xy_path(mesh, src, dst);
        assert_eq!(path.first(), Some(&src));
        assert_eq!(path.last(), Some(&dst));
        assert_eq!(path.len(), mesh.hop_distance(src, dst) as usize + 1);
    }

    #[test]
    fn path_to_self_is_singleton() {
        let mesh = Mesh::new(4, 4);
        let n = mesh.node_at(2, 2);
        assert_eq!(xy_path(mesh, n, n), vec![n]);
    }

    #[test]
    fn path_turns_at_most_once() {
        // X-Y routing: the direction sequence changes at most once
        // (E/W segment then N/S segment).
        let mesh = Mesh::new(8, 8);
        let path = xy_path(mesh, mesh.node_at(0, 7), mesh.node_at(7, 0));
        let mut changes = 0;
        let mut prev: Option<Direction> = None;
        for w in path.windows(2) {
            let dir = xy_route(mesh, w[0], w[1]);
            if prev.is_some() && prev != Some(dir) {
                changes += 1;
            }
            prev = Some(dir);
        }
        assert!(changes <= 1, "X-Y path turned {changes} times");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn every_step_decreases_distance(a in 0u16..64, b in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let (src, dst) = (NodeId(a), NodeId(b));
            let mut current = src;
            let mut steps = 0;
            while current != dst {
                let before = mesh.hop_distance(current, dst);
                let dir = xy_route(mesh, current, dst);
                current = mesh.neighbor(current, dir).expect("route stays on mesh");
                prop_assert_eq!(mesh.hop_distance(current, dst), before - 1);
                steps += 1;
                prop_assert!(steps <= 14, "route did not converge");
            }
        }

        #[test]
        fn path_has_no_repeated_nodes(a in 0u16..64, b in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let path = xy_path(mesh, NodeId(a), NodeId(b));
            let mut sorted: Vec<_> = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len());
        }
    }
}
