//! Routing functions.
//!
//! The paper's configuration uses deterministic X-Y dimension-order
//! routing, which is deadlock-free on a mesh without virtual-channel
//! restrictions: a packet first travels along the X dimension to the
//! destination column, then along Y to the destination row.

use crate::topology::{Coord, Direction, Mesh, NodeId};

/// Computes the X-Y output port at router `current` for a packet headed to
/// `dst`.
///
/// Returns [`Direction::Local`] when `current == dst` (eject).
///
/// # Example
///
/// ```
/// use noc_sim::routing::xy_route;
/// use noc_sim::topology::{Direction, Mesh};
///
/// let mesh = Mesh::new(8, 8);
/// let src = mesh.node_at(1, 1);
/// let dst = mesh.node_at(4, 6);
/// // X first…
/// assert_eq!(xy_route(mesh, src, dst), Direction::East);
/// // …then Y once the column matches.
/// let mid = mesh.node_at(4, 1);
/// assert_eq!(xy_route(mesh, mid, dst), Direction::South);
/// assert_eq!(xy_route(mesh, dst, dst), Direction::Local);
/// ```
pub fn xy_route(mesh: Mesh, current: NodeId, dst: NodeId) -> Direction {
    let c = mesh.coord(current);
    let d = mesh.coord(dst);
    if c.x < d.x {
        Direction::East
    } else if c.x > d.x {
        Direction::West
    } else if c.y < d.y {
        Direction::South
    } else if c.y > d.y {
        Direction::North
    } else {
        Direction::Local
    }
}

/// Enumerates the routers an X-Y-routed packet visits from `src` to `dst`,
/// inclusive of both endpoints.
///
/// Used by the reward function, which attributes a delivered packet's
/// end-to-end latency to every router on its path.
pub fn xy_path(mesh: Mesh, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(mesh.hop_distance(src, dst) as usize + 1);
    let mut current = src;
    path.push(current);
    while current != dst {
        let dir = xy_route(mesh, current, dst);
        current = mesh
            .neighbor(current, dir)
            .expect("xy_route never walks off the mesh");
        path.push(current);
    }
    path
}

/// Node count up to which [`RouteTable`] materializes the full
/// `current × dst` direction matrix (one byte per pair, so ≤ 1 MiB).
/// Larger meshes fall back to coordinate comparison, which is still
/// division-free thanks to the per-node coordinate cache.
const DENSE_ROUTE_LIMIT: usize = 1024;

/// Precomputed X-Y next-hop lookup.
///
/// [`xy_route`] derives both endpoint coordinates (two divisions each)
/// on every call; route computation runs once per packet per hop and
/// the latency-attribution walk once per node on every delivered
/// packet's path. The table answers the same query with one index
/// (small meshes) or two cached-coordinate compares (large meshes),
/// and is verified against `xy_route` exhaustively in tests.
#[derive(Debug, Clone)]
pub struct RouteTable {
    coords: Vec<Coord>,
    /// `dense[current * n + dst]` is the direction's port index.
    dense: Option<Vec<u8>>,
    n: usize,
}

impl RouteTable {
    /// Builds the lookup structures for `mesh`.
    pub fn new(mesh: Mesh) -> Self {
        let n = mesh.num_nodes();
        let coords: Vec<Coord> = mesh.nodes().map(|id| mesh.coord(id)).collect();
        let dense = (n <= DENSE_ROUTE_LIMIT).then(|| {
            let mut table = vec![0u8; n * n];
            for cur in mesh.nodes() {
                for dst in mesh.nodes() {
                    table[cur.index() * n + dst.index()] = xy_route(mesh, cur, dst).index() as u8;
                }
            }
            table
        });
        Self { coords, dense, n }
    }

    /// The X-Y output port at `current` for a packet headed to `dst`.
    /// Identical to [`xy_route`] on the table's mesh.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the mesh the table was built for.
    #[inline]
    pub fn next_hop(&self, current: NodeId, dst: NodeId) -> Direction {
        if let Some(dense) = &self.dense {
            return Direction::from_index(dense[current.index() * self.n + dst.index()] as usize);
        }
        let c = self.coords[current.index()];
        let d = self.coords[dst.index()];
        if c.x < d.x {
            Direction::East
        } else if c.x > d.x {
            Direction::West
        } else if c.y < d.y {
            Direction::South
        } else if c.y > d.y {
            Direction::North
        } else {
            Direction::Local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_to_self_is_local() {
        let mesh = Mesh::new(8, 8);
        for node in mesh.nodes() {
            assert_eq!(xy_route(mesh, node, node), Direction::Local);
        }
    }

    #[test]
    fn x_dimension_resolved_first() {
        let mesh = Mesh::new(8, 8);
        let src = mesh.node_at(0, 0);
        let dst = mesh.node_at(7, 7);
        assert_eq!(xy_route(mesh, src, dst), Direction::East);
        let col = mesh.node_at(7, 0);
        assert_eq!(xy_route(mesh, col, dst), Direction::South);
    }

    #[test]
    fn west_and_north_used_when_needed() {
        let mesh = Mesh::new(8, 8);
        assert_eq!(
            xy_route(mesh, mesh.node_at(5, 5), mesh.node_at(2, 5)),
            Direction::West
        );
        assert_eq!(
            xy_route(mesh, mesh.node_at(5, 5), mesh.node_at(5, 2)),
            Direction::North
        );
    }

    #[test]
    fn path_endpoints_and_length() {
        let mesh = Mesh::new(8, 8);
        let src = mesh.node_at(1, 2);
        let dst = mesh.node_at(6, 7);
        let path = xy_path(mesh, src, dst);
        assert_eq!(path.first(), Some(&src));
        assert_eq!(path.last(), Some(&dst));
        assert_eq!(path.len(), mesh.hop_distance(src, dst) as usize + 1);
    }

    #[test]
    fn path_to_self_is_singleton() {
        let mesh = Mesh::new(4, 4);
        let n = mesh.node_at(2, 2);
        assert_eq!(xy_path(mesh, n, n), vec![n]);
    }

    #[test]
    fn route_table_matches_xy_route_exhaustively() {
        // 4×4 exercises the dense table; a synthetic over-limit mesh
        // exercises the coordinate-compare fallback.
        let mesh = Mesh::new(4, 4);
        let table = RouteTable::new(mesh);
        for cur in mesh.nodes() {
            for dst in mesh.nodes() {
                assert_eq!(table.next_hop(cur, dst), xy_route(mesh, cur, dst));
            }
        }
    }

    #[test]
    fn route_table_fallback_matches_on_large_mesh() {
        let mesh = Mesh::new(64, 33); // 2112 nodes: past the dense limit
        let table = RouteTable::new(mesh);
        assert!(table.dense.is_none(), "large mesh must use the fallback");
        for cur in [0u16, 1, 63, 64, 1000, 2111] {
            for dst in [0u16, 31, 64, 100, 2047, 2111] {
                let (cur, dst) = (NodeId(cur), NodeId(dst));
                assert_eq!(table.next_hop(cur, dst), xy_route(mesh, cur, dst));
            }
        }
    }

    #[test]
    fn path_turns_at_most_once() {
        // X-Y routing: the direction sequence changes at most once
        // (E/W segment then N/S segment).
        let mesh = Mesh::new(8, 8);
        let path = xy_path(mesh, mesh.node_at(0, 7), mesh.node_at(7, 0));
        let mut changes = 0;
        let mut prev: Option<Direction> = None;
        for w in path.windows(2) {
            let dir = xy_route(mesh, w[0], w[1]);
            if prev.is_some() && prev != Some(dir) {
                changes += 1;
            }
            prev = Some(dir);
        }
        assert!(changes <= 1, "X-Y path turned {changes} times");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn every_step_decreases_distance(a in 0u16..64, b in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let (src, dst) = (NodeId(a), NodeId(b));
            let mut current = src;
            let mut steps = 0;
            while current != dst {
                let before = mesh.hop_distance(current, dst);
                let dir = xy_route(mesh, current, dst);
                current = mesh.neighbor(current, dir).expect("route stays on mesh");
                prop_assert_eq!(mesh.hop_distance(current, dst), before - 1);
                steps += 1;
                prop_assert!(steps <= 14, "route did not converge");
            }
        }

        #[test]
        fn path_has_no_repeated_nodes(a in 0u16..64, b in 0u16..64) {
            let mesh = Mesh::new(8, 8);
            let path = xy_path(mesh, NodeId(a), NodeId(b));
            let mut sorted: Vec<_> = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len());
        }
    }
}
