//! The virtual-channel router microarchitecture.
//!
//! Each router implements the canonical 4-stage pipeline:
//!
//! 1. **BW** — buffer write: an arriving flit spends at least one cycle in
//!    its input VC FIFO.
//! 2. **RC** — route computation: the head flit of an idle VC computes its
//!    output port (X-Y routing).
//! 3. **VA** — virtual-channel allocation: the packet competes for a free
//!    VC on the chosen output port (round-robin arbitration).
//! 4. **SA/ST** — switch allocation and traversal: per-cycle separable
//!    (input-first, then output) arbitration for the crossbar, followed by
//!    link traversal.
//!
//! The inter-router mechanics (flit arrival, ejection, credits, ARQ
//! acknowledgements) are orchestrated by
//! [`Network`](crate::network::Network); this module owns the per-router
//! state and the RC/VA stages.

use crate::arbiter::RoundRobinArbiter;
use crate::config::NocConfig;
use crate::flit::{Flit, FlitArena, FlitRef, PacketId};
use crate::routing::{FaultRoutes, RouteTable};
use crate::topology::{Direction, NodeId, VcClass};
use noc_coding::arq::{RetransmitBuffer, SequenceNumber};
use std::collections::VecDeque;

/// A flit resident in an input VC buffer, stamped with its arrival cycle
/// so the pipeline can enforce the buffer-write stage. The flit body
/// lives in the network's [`FlitArena`]; the FIFO moves 16-byte entries.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BufferedFlit {
    pub flit: FlitRef,
    pub arrived_at: u64,
}

/// Input VC pipeline state.
///
/// The `NeedsVa`/`Active` variants record which packet owns the VC so
/// the hard-fault purge can release channels whose packet was doomed by
/// a link/router failure without scanning FIFO contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VcState {
    /// No packet assigned.
    Idle,
    /// Route computed; awaiting an output VC admissible for the hop's
    /// date-line class (always [`VcClass::Any`] off-torus).
    NeedsVa {
        out_port: Direction,
        class: VcClass,
        packet: PacketId,
    },
    /// Output VC held; flits flow through SA.
    Active {
        out_port: Direction,
        out_vc: u8,
        packet: PacketId,
    },
}

/// One input virtual channel.
#[derive(Debug, Clone)]
pub(crate) struct InputVc {
    pub fifo: VecDeque<BufferedFlit>,
    pub state: VcState,
    /// Go-back-N gate: when a flit with this sequence number was rejected,
    /// later flits on this VC are auto-rejected until its retransmission
    /// arrives (preserves per-VC flit order under hop-level ARQ).
    pub awaiting_retx: Option<SequenceNumber>,
}

impl InputVc {
    fn new() -> Self {
        Self {
            fifo: VecDeque::new(),
            state: VcState::Idle,
            awaiting_retx: None,
        }
    }

    /// An input VC counts as occupied for the buffer-utilization feature
    /// when it holds flits or an active packet.
    pub(crate) fn occupied(&self) -> bool {
        !self.fifo.is_empty() || self.state != VcState::Idle
    }
}

/// Credit/allocation state of one output VC.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutputVc {
    pub allocated: bool,
    pub credits: u8,
}

/// A NACKed flit waiting for priority resend on its output port. Holds
/// an arena handle: the resend copy is re-materialized into a fresh
/// slot when the NACK is processed, while the pristine canonical copy
/// stays in the [`RetransmitBuffer`] by value (the wire-side slot is
/// mutated in place by fault draws, so it can never be shared with the
/// buffered original).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRetransmit {
    pub flit: FlitRef,
    pub out_vc: u8,
    pub seq: SequenceNumber,
}

/// One output port: its VC credit state, the ARQ retransmit buffer, and
/// the link-busy horizon used by operation modes 2 and 3.
#[derive(Debug, Clone)]
pub(crate) struct OutputPort {
    pub vcs: Vec<OutputVc>,
    /// Earliest cycle at which the port may transmit again.
    pub next_free: u64,
    /// Copies of unacknowledged flits sent on ECC-enabled links.
    pub retx_buffer: RetransmitBuffer<(Flit, u8)>,
    /// NACKed flits queued for priority resend.
    pub retx_pending: VecDeque<PendingRetransmit>,
}

/// A router: `P` input ports of `V` VCs each, `P` output ports, and
/// the arbiters for VA and SA. `P` is the topology's port count (5 on
/// planar networks, 7 with vertical links).
#[derive(Debug, Clone)]
pub struct Router {
    pub(crate) id: NodeId,
    /// All input VCs in one dense slab, indexed `port * vcs_per_port +
    /// vc`. Flat layout keeps the per-cycle pipeline scans on one
    /// contiguous allocation (and iteration order identical to the old
    /// port-major nesting).
    pub(crate) inputs: Vec<InputVc>,
    /// VCs per input port (`inputs.len() == num_ports * vcs_per_port`).
    pub(crate) vcs_per_port: usize,
    /// Ports on this router, including `Local` — fixed by the topology.
    pub(crate) num_ports: usize,
    /// `outputs[port]`.
    pub(crate) outputs: Vec<OutputPort>,
    /// Per output port, over `num_ports * V` flattened input VCs.
    pub(crate) va_arbiters: Vec<RoundRobinArbiter>,
    /// Per input port, over its `V` VCs.
    pub(crate) sa_input_arbiters: Vec<RoundRobinArbiter>,
    /// Per output port, over the `num_ports` input ports.
    pub(crate) sa_output_arbiters: Vec<RoundRobinArbiter>,
    /// Incrementally maintained count of occupied input VCs, updated at
    /// every FIFO push/pop and VC release. Lets the per-cycle phases
    /// skip idle routers entirely instead of rescanning `P × V` VCs.
    pub(crate) occupied_vcs: u32,
    /// Count of idle input VCs holding a buffered flit — the candidates
    /// the RC stage would examine. Zero lets `rc_stage` return without
    /// scanning; maintained at enqueue, RC promotion, and VC release.
    pub(crate) rc_pending: u32,
    /// Count of input VCs in [`VcState::NeedsVa`]. Zero lets `va_stage`
    /// return without scanning: with no requester, no arbiter is
    /// consulted and no output VC changes, so the skip is exact.
    pub(crate) needs_va: u32,
    /// Count of input VCs in [`VcState::Active`]. Together with empty
    /// resend queues, zero lets the SA/ST phase skip the router: no
    /// request can be asserted, so arbiters and ports are untouched.
    pub(crate) active_vcs: u32,
    /// Reusable request vector for SA input arbitration (`V` slots).
    pub(crate) sa_scratch: Vec<bool>,
    /// Reusable request vector for VA arbitration (`num_ports × V`).
    pub(crate) va_scratch: Vec<bool>,
}

impl Router {
    /// Builds an empty router for node `id` under `config`.
    pub(crate) fn new(id: NodeId, config: &NocConfig) -> Self {
        let v = config.vcs_per_port as usize;
        let num_ports = config.mesh.num_ports();
        let inputs = (0..num_ports * v).map(|_| InputVc::new()).collect();
        let outputs = (0..num_ports)
            .map(|p| OutputPort {
                vcs: (0..v)
                    .map(|_| OutputVc {
                        allocated: false,
                        // The ejection port drains into the core; model it
                        // as never back-pressured.
                        credits: if p == Direction::Local.index() {
                            u8::MAX
                        } else {
                            config.vc_depth
                        },
                    })
                    .collect(),
                next_free: 0,
                retx_buffer: RetransmitBuffer::new(config.retransmit_buffer_depth),
                retx_pending: VecDeque::new(),
            })
            .collect();
        Self {
            id,
            inputs,
            vcs_per_port: v,
            num_ports,
            outputs,
            va_arbiters: (0..num_ports)
                .map(|_| RoundRobinArbiter::new(num_ports * v))
                .collect(),
            sa_input_arbiters: (0..num_ports).map(|_| RoundRobinArbiter::new(v)).collect(),
            sa_output_arbiters: (0..num_ports)
                .map(|_| RoundRobinArbiter::new(num_ports))
                .collect(),
            occupied_vcs: 0,
            rc_pending: 0,
            needs_va: 0,
            active_vcs: 0,
            sa_scratch: vec![false; v],
            va_scratch: vec![false; num_ports * v],
        }
    }

    /// Ports on this router, including `Local`.
    #[cfg_attr(not(any(test, feature = "verify")), allow(dead_code))]
    #[inline]
    pub(crate) fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// The input VC at `(port, vc)`.
    #[inline]
    pub(crate) fn input(&self, port: usize, vc: usize) -> &InputVc {
        &self.inputs[port * self.vcs_per_port + vc]
    }

    /// Mutable access to the input VC at `(port, vc)`.
    #[inline]
    pub(crate) fn input_mut(&mut self, port: usize, vc: usize) -> &mut InputVc {
        &mut self.inputs[port * self.vcs_per_port + vc]
    }

    /// The slice of input VCs belonging to `port`.
    #[cfg_attr(not(any(test, feature = "verify")), allow(dead_code))]
    #[inline]
    pub(crate) fn port_vcs(&self, port: usize) -> &[InputVc] {
        let v = self.vcs_per_port;
        &self.inputs[port * v..(port + 1) * v]
    }

    /// Mutable slice of input VCs belonging to `port`.
    #[inline]
    pub(crate) fn port_vcs_mut(&mut self, port: usize) -> &mut [InputVc] {
        let v = self.vcs_per_port;
        &mut self.inputs[port * v..(port + 1) * v]
    }

    /// Appends a flit handle to an input VC FIFO, maintaining the
    /// incremental occupied-VC count. All buffer writes go through here.
    pub(crate) fn enqueue(&mut self, in_port: usize, vc: usize, flit: FlitRef, arrived_at: u64) {
        let ivc = &mut self.inputs[in_port * self.vcs_per_port + vc];
        if !ivc.occupied() {
            self.occupied_vcs += 1;
        }
        if ivc.state == VcState::Idle && ivc.fifo.is_empty() {
            self.rc_pending += 1;
        }
        ivc.fifo.push_back(BufferedFlit { flit, arrived_at });
    }

    /// Debug cross-check of the three incremental pipeline-stage
    /// counters against a full VC rescan (compiled out in release).
    pub(crate) fn debug_check_stage_counters(&self) {
        if cfg!(debug_assertions) {
            let mut rc = 0u32;
            let mut va = 0u32;
            let mut active = 0u32;
            for vc in &self.inputs {
                match vc.state {
                    VcState::Idle if !vc.fifo.is_empty() => rc += 1,
                    VcState::Idle => {}
                    VcState::NeedsVa { .. } => va += 1,
                    VcState::Active { .. } => active += 1,
                }
            }
            debug_assert_eq!(
                (rc, va, active),
                (self.rc_pending, self.needs_va, self.active_vcs),
                "pipeline-stage counters diverged at {}",
                self.id
            );
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of currently occupied input VCs (the RL buffer-utilization
    /// feature). O(1): the count is maintained incrementally at every
    /// FIFO push/pop; debug builds cross-check it against a full rescan.
    pub fn occupied_input_vcs(&self) -> usize {
        debug_assert_eq!(
            self.occupied_vcs as usize,
            self.inputs.iter().filter(|vc| vc.occupied()).count(),
            "incremental occupied-VC count diverged at {}",
            self.id
        );
        self.occupied_vcs as usize
    }

    /// Total flits currently buffered across all input VC FIFOs — a
    /// point-in-time congestion measure sampled by the telemetry layer
    /// at control-epoch boundaries.
    pub fn buffered_flits(&self) -> u64 {
        self.inputs.iter().map(|vc| vc.fifo.len() as u64).sum()
    }

    /// Route computation: idle input VCs whose head flit has completed its
    /// buffer-write stage compute their output port via the precomputed
    /// route table — or, once hard faults are active, via the
    /// fault-adaptive up*/down* table.
    ///
    /// A head flit whose destination is unreachable on the live topology
    /// keeps its VC idle and reports its packet id into `doomed`; the
    /// network purges every flit of that packet right after the RC phase.
    pub(crate) fn rc_stage(
        &mut self,
        cycle: u64,
        routes: &RouteTable,
        fault: Option<&FaultRoutes>,
        arena: &FlitArena,
        doomed: &mut Vec<(PacketId, bool)>,
    ) {
        self.debug_check_stage_counters();
        if self.rc_pending == 0 {
            return; // no idle VC holds a flit: nothing to route
        }
        // Flat scan visits VCs in the same port-major order as the old
        // nested loops; once every RC candidate (idle VC with a buffered
        // flit) has been seen, the remaining VCs cannot route and the
        // scan stops early.
        let mut remaining = self.rc_pending;
        for vc in &mut self.inputs {
            if remaining == 0 {
                break;
            }
            if vc.state != VcState::Idle {
                continue;
            }
            let Some(front) = vc.fifo.front() else {
                continue;
            };
            remaining -= 1;
            if front.arrived_at >= cycle {
                continue; // still in the BW stage
            }
            let flit = &arena[front.flit];
            debug_assert!(
                flit.kind.is_head(),
                "non-head flit {:?} at front of idle VC",
                flit.kind
            );
            let (out_port, class) = match fault {
                None => routes.next_hop_class(self.id, flit.dst),
                // Up*/down* recovery routes are deadlock-free by rank
                // monotonicity alone; they place no VC restriction.
                Some(f) => match f.next_hop(self.id, flit.dst) {
                    Some(dir) => (dir, VcClass::Any),
                    None => {
                        doomed.push((flit.packet, !flit.class.is_control()));
                        continue;
                    }
                },
            };
            vc.state = VcState::NeedsVa {
                out_port,
                class,
                packet: flit.packet,
            };
            self.rc_pending -= 1;
            self.needs_va += 1;
        }
    }

    /// Rebuilds the four incremental stage counters by rescanning every
    /// input VC. Only used after a hard-fault purge rewrites FIFO and VC
    /// state wholesale, where incremental maintenance is not worth the
    /// complexity.
    pub(crate) fn recount_stage_counters(&mut self) {
        let mut occupied = 0u32;
        let mut rc = 0u32;
        let mut va = 0u32;
        let mut active = 0u32;
        for vc in &self.inputs {
            if vc.occupied() {
                occupied += 1;
            }
            match vc.state {
                VcState::Idle if !vc.fifo.is_empty() => rc += 1,
                VcState::Idle => {}
                VcState::NeedsVa { .. } => va += 1,
                VcState::Active { .. } => active += 1,
            }
        }
        self.occupied_vcs = occupied;
        self.rc_pending = rc;
        self.needs_va = va;
        self.active_vcs = active;
    }

    /// Virtual-channel allocation: one grant per output port per cycle.
    ///
    /// Returns the number of allocations performed (for the power model).
    pub(crate) fn va_stage(&mut self) -> u64 {
        self.debug_check_stage_counters();
        if self.needs_va == 0 {
            return 0; // no requester: arbiters and output VCs untouched
        }
        // One pre-pass marks which (output port, VC class) pairs have a
        // requester at all, so the per-port loop below only rescans the
        // slab for ports that can actually grant. A requester targets
        // exactly one port, and a grant at an earlier port removes the
        // winner only from that port's request set, so the marks stay
        // valid across the loop.
        let mut has_requester = [[false; 3]; crate::topology::MAX_PORTS];
        for vc in &self.inputs {
            if let VcState::NeedsVa {
                out_port, class, ..
            } = vc.state
            {
                has_requester[out_port.index()][class.index()] = true;
            }
        }
        let mut allocations = 0;
        // Index-driven: `out_p` addresses `has_requester`, `self.outputs`,
        // and `self.va_arbiters` in parallel.
        #[allow(clippy::needless_range_loop)]
        for out_p in 0..self.num_ports {
            let wanted = &has_requester[out_p];
            if wanted == &[false; 3] {
                continue;
            }
            // Still one grant per output port per cycle: the first class
            // (in Any, Lo, Hi order) with both a requester and a free
            // output VC in its admissible range competes; off-torus every
            // requester is `Any` over the full range, so this degenerates
            // to the classic first-free-VC scan.
            let mut chosen = None;
            for class in VcClass::ALL {
                if !wanted[class.index()] {
                    continue;
                }
                let range = class.vc_range(self.vcs_per_port as u8);
                if let Some(free) = self.outputs[out_p].vcs[range.clone()]
                    .iter()
                    .position(|o| !o.allocated)
                {
                    chosen = Some((class, range.start + free));
                    break;
                }
            }
            let Some((granted_class, free_vc)) = chosen else {
                continue;
            };
            // Gather requesting input VCs into the reusable scratch
            // vector; the flat slab index *is* the arbiter's flattened
            // `port * V + vc` request index.
            self.va_scratch.fill(false);
            let mut any = false;
            for (flat, vc) in self.inputs.iter().enumerate() {
                if matches!(vc.state, VcState::NeedsVa { out_port, class, .. }
                    if out_port.index() == out_p && class == granted_class)
                {
                    self.va_scratch[flat] = true;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let winner = self.va_arbiters[out_p]
                .grant(&self.va_scratch)
                .expect("a request was asserted");
            let VcState::NeedsVa { packet, .. } = self.inputs[winner].state else {
                unreachable!("VA winner must be in NeedsVa");
            };
            self.inputs[winner].state = VcState::Active {
                out_port: Direction::from_index(out_p),
                out_vc: free_vc as u8,
                packet,
            };
            self.needs_va -= 1;
            self.active_vcs += 1;
            self.outputs[out_p].vcs[free_vc].allocated = true;
            allocations += 1;
        }
        allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Packet, PacketClass, PacketId};
    use crate::topology::{Topo, NUM_PORTS};
    use noc_coding::crc::Crc32;

    fn test_config() -> NocConfig {
        NocConfig::builder().mesh(4, 4).build()
    }

    fn head_flit(src: NodeId, dst: NodeId) -> Flit {
        Packet {
            id: PacketId(1),
            src,
            dst,
            num_flits: 4,
            class: PacketClass::Data,
            injected_at: 0,
            payload_seed: 7,
        }
        .make_flit(0, 0, &Crc32::new())
    }

    #[test]
    fn new_router_is_empty() {
        let r = Router::new(NodeId(5), &test_config());
        assert_eq!(r.id(), NodeId(5));
        assert_eq!(r.occupied_input_vcs(), 0);
        assert_eq!(r.inputs.len(), NUM_PORTS * 4);
        assert_eq!(r.vcs_per_port, 4);
        assert_eq!(r.outputs[0].vcs[0].credits, 4);
        assert_eq!(
            r.outputs[Direction::Local.index()].vcs[0].credits,
            u8::MAX,
            "ejection port is never back-pressured"
        );
    }

    #[test]
    fn rc_waits_for_buffer_write_stage() {
        let config = test_config();
        let mesh = config.mesh;
        let routes = RouteTable::new(mesh);
        let mut arena = FlitArena::new();
        let mut r = Router::new(mesh.node_at(0, 0), &config);
        let f = arena.alloc(head_flit(mesh.node_at(0, 0), mesh.node_at(3, 0)));
        r.enqueue(Direction::Local.index(), 0, f, 10);
        let mut doomed = Vec::new();
        // Same cycle: still in BW.
        r.rc_stage(10, &routes, None, &arena, &mut doomed);
        assert_eq!(r.input(Direction::Local.index(), 0).state, VcState::Idle);
        // Next cycle: RC fires, X-first routing goes east.
        r.rc_stage(11, &routes, None, &arena, &mut doomed);
        assert_eq!(
            r.input(Direction::Local.index(), 0).state,
            VcState::NeedsVa {
                out_port: Direction::East,
                class: VcClass::Any,
                packet: PacketId(1)
            }
        );
        assert!(doomed.is_empty());
    }

    #[test]
    fn rc_assigns_dateline_class_on_torus() {
        let config = NocConfig::builder().topology(Topo::torus(4, 4)).build();
        let topo = config.mesh;
        let routes = RouteTable::new(topo);
        let mut arena = FlitArena::new();
        // Router (3, 0) sending to (1, 0): East across the wrap link.
        let mut r = Router::new(topo.node_at(3, 0), &config);
        let f = arena.alloc(head_flit(topo.node_at(3, 0), topo.node_at(1, 0)));
        r.enqueue(Direction::Local.index(), 0, f, 0);
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        assert_eq!(
            r.input(Direction::Local.index(), 0).state,
            VcState::NeedsVa {
                out_port: Direction::East,
                class: VcClass::Lo,
                packet: PacketId(1)
            }
        );
    }

    #[test]
    fn va_respects_dateline_vc_halves() {
        let config = NocConfig::builder().topology(Topo::torus(4, 4)).build();
        let topo = config.mesh;
        let routes = RouteTable::new(topo);
        let mut arena = FlitArena::new();
        let mut r = Router::new(topo.node_at(3, 0), &config);
        // A Lo-class requester (wraps the date line) on East.
        let f = arena.alloc(head_flit(topo.node_at(3, 0), topo.node_at(1, 0)));
        r.enqueue(Direction::Local.index(), 0, f, 0);
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        assert_eq!(r.va_stage(), 1);
        let VcState::Active { out_vc, .. } = r.input(Direction::Local.index(), 0).state else {
            panic!("requester must be granted");
        };
        assert!(
            VcClass::Lo.admits(out_vc as usize, config.vcs_per_port),
            "Lo-class hop got VC {out_vc} outside the low half"
        );
        // Exhaust the low half (VCs 0..2 of 4): a further Lo requester
        // stalls even though the high half is free.
        let g = arena.alloc(head_flit(topo.node_at(3, 0), topo.node_at(1, 0)));
        r.enqueue(Direction::Local.index(), 1, g, 0);
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        assert_eq!(r.va_stage(), 1);
        let h = arena.alloc(head_flit(topo.node_at(3, 0), topo.node_at(1, 0)));
        r.enqueue(Direction::Local.index(), 2, h, 0);
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        assert_eq!(r.va_stage(), 0, "low half exhausted: Lo requester waits");
        // A Hi-class requester (no wrap) still gets a high-half VC.
        let k = arena.alloc(head_flit(topo.node_at(3, 0), topo.node_at(2, 0)));
        r.enqueue(Direction::Local.index(), 3, k, 0);
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        assert_eq!(r.va_stage(), 1);
        let VcState::Active {
            out_vc, out_port, ..
        } = r.input(Direction::Local.index(), 3).state
        else {
            panic!("Hi requester must be granted");
        };
        assert_eq!(out_port, Direction::West, "3→2 is one hop west, no wrap");
        assert!(VcClass::Hi.admits(out_vc as usize, config.vcs_per_port));
    }

    #[test]
    fn va_allocates_one_vc_per_output_per_cycle() {
        let config = test_config();
        let mesh = config.mesh;
        let routes = RouteTable::new(mesh);
        let mut arena = FlitArena::new();
        let mut r = Router::new(mesh.node_at(0, 0), &config);
        // Two input VCs both want East.
        for vc in 0..2 {
            let f = arena.alloc(head_flit(mesh.node_at(0, 0), mesh.node_at(3, 0)));
            r.enqueue(Direction::Local.index(), vc, f, 0);
        }
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        let granted = r.va_stage();
        assert_eq!(granted, 1, "one VA grant per output port per cycle");
        let active = r
            .port_vcs(Direction::Local.index())
            .iter()
            .filter(|vc| matches!(vc.state, VcState::Active { .. }))
            .count();
        assert_eq!(active, 1);
        // Second cycle: the other one gets a (different) VC.
        let granted = r.va_stage();
        assert_eq!(granted, 1);
        let vcs: Vec<u8> = r
            .port_vcs(Direction::Local.index())
            .iter()
            .filter_map(|vc| match vc.state {
                VcState::Active { out_vc, .. } => Some(out_vc),
                _ => None,
            })
            .collect();
        assert_eq!(vcs.len(), 2);
        assert_ne!(vcs[0], vcs[1], "distinct output VCs");
    }

    #[test]
    fn va_exhausts_output_vcs() {
        let config = test_config();
        let mesh = config.mesh;
        let routes = RouteTable::new(mesh);
        let mut arena = FlitArena::new();
        let mut r = Router::new(mesh.node_at(0, 0), &config);
        // 5 requesters for East across two input ports, only 4 output VCs.
        for vc in 0..4 {
            let f = arena.alloc(head_flit(mesh.node_at(0, 0), mesh.node_at(3, 0)));
            r.enqueue(Direction::Local.index(), vc, f, 0);
        }
        let f = arena.alloc(head_flit(mesh.node_at(0, 1), mesh.node_at(3, 0)));
        r.enqueue(Direction::West.index(), 0, f, 0);
        r.rc_stage(1, &routes, None, &arena, &mut Vec::new());
        let mut total = 0;
        for _ in 0..8 {
            total += r.va_stage();
        }
        assert_eq!(total, 4, "only 4 output VCs exist on East");
    }

    #[test]
    fn occupied_vcs_counts_active_and_buffered() {
        let config = test_config();
        let mesh = config.mesh;
        let mut arena = FlitArena::new();
        let mut r = Router::new(mesh.node_at(0, 0), &config);
        assert_eq!(r.occupied_input_vcs(), 0);
        let f = arena.alloc(head_flit(mesh.node_at(0, 0), mesh.node_at(1, 0)));
        r.enqueue(0, 0, f, 0);
        assert_eq!(r.occupied_input_vcs(), 1);
        // A second flit on the same VC does not double-count.
        let g = arena.alloc(head_flit(mesh.node_at(0, 0), mesh.node_at(1, 0)));
        r.enqueue(0, 0, g, 1);
        assert_eq!(r.occupied_input_vcs(), 1);
    }
}
