//! Round-robin arbitration.
//!
//! Virtual-channel allocation and switch allocation both resolve
//! multi-requester conflicts with rotating-priority (round-robin)
//! arbiters, the structure used by the canonical 4-stage VC router.

use serde::{Deserialize, Serialize};

/// A rotating-priority arbiter over `n` requesters.
///
/// Fairness property: a requester that keeps requesting is granted within
/// `n` invocations regardless of competing requesters.
///
/// # Example
///
/// ```
/// use noc_sim::arbiter::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(4);
/// assert_eq!(arb.grant(&[true, true, false, false]), Some(0));
/// // Priority rotates past the last winner.
/// assert_eq!(arb.grant(&[true, true, false, false]), Some(1));
/// assert_eq!(arb.grant(&[true, true, false, false]), Some(0));
/// assert_eq!(arb.grant(&[false, false, false, false]), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index with the highest priority on the next grant.
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        Self { n, next: 0 }
    }

    /// Number of requester slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; arbiters have at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants one of the asserted requests, rotating priority past the
    /// winner. Returns `None` when no request is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.len()`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector size mismatch");
        for offset in 0..self.n {
            let idx = (self.next + offset) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }

    /// Like [`grant`](Self::grant) but with requests given as indices.
    pub fn grant_indices(&mut self, requesters: &[usize]) -> Option<usize> {
        if requesters.is_empty() {
            return None;
        }
        let mut requests = vec![false; self.n];
        for &r in requesters {
            requests[r] = true;
        }
        self.grant(&requests)
    }

    /// Resets the priority pointer (used when re-seeding experiments).
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_always_wins() {
        let mut arb = RoundRobinArbiter::new(3);
        for _ in 0..10 {
            assert_eq!(arb.grant(&[false, true, false]), Some(1));
        }
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
    }

    #[test]
    fn grants_rotate_fairly() {
        let mut arb = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        let seq: Vec<_> = (0..6).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn starvation_freedom_within_n_rounds() {
        let mut arb = RoundRobinArbiter::new(4);
        // Requester 3 keeps requesting while everyone else also requests.
        let all = [true; 4];
        let mut granted = false;
        for _ in 0..4 {
            if arb.grant(&all) == Some(3) {
                granted = true;
            }
        }
        assert!(granted, "requester 3 starved");
    }

    #[test]
    fn grant_indices_matches_grant() {
        let mut a = RoundRobinArbiter::new(4);
        let mut b = RoundRobinArbiter::new(4);
        assert_eq!(
            a.grant(&[false, true, false, true]),
            b.grant_indices(&[1, 3])
        );
        assert_eq!(
            a.grant(&[false, true, false, true]),
            b.grant_indices(&[3, 1])
        );
    }

    #[test]
    fn grant_indices_empty_is_none() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant_indices(&[]), None);
    }

    #[test]
    fn reset_restores_initial_priority() {
        let mut arb = RoundRobinArbiter::new(2);
        arb.grant(&[true, true]);
        arb.reset();
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_size_panics() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_request_size_panics() {
        let mut arb = RoundRobinArbiter::new(2);
        let _ = arb.grant(&[true]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The grant, when present, is always an asserted request.
        #[test]
        fn grant_is_a_requester(requests in proptest::collection::vec(any::<bool>(), 1..16)) {
            let mut arb = RoundRobinArbiter::new(requests.len());
            match arb.grant(&requests) {
                Some(idx) => prop_assert!(requests[idx]),
                None => prop_assert!(requests.iter().all(|&r| !r)),
            }
        }

        /// Over n consecutive all-request rounds every index is granted
        /// exactly once (perfect fairness).
        #[test]
        fn all_requesters_served_in_n_rounds(n in 1usize..12) {
            let mut arb = RoundRobinArbiter::new(n);
            let all = vec![true; n];
            let mut seen = vec![false; n];
            for _ in 0..n {
                let g = arb.grant(&all).expect("requests asserted");
                prop_assert!(!seen[g], "index granted twice in one rotation");
                seen[g] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
