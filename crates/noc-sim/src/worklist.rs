//! Dense bitset worklists over router/node indices.
//!
//! The per-cycle pipeline phases only have work at routers that hold at
//! least one occupied input VC or a pending priority resend; injection
//! only has work at nodes with an open injection or a queued packet.
//! [`ActiveSet`] tracks those memberships as one bit per index so a
//! cycle's passes visit exactly the live routers in ascending index
//! order — the same order the dense per-router loops used — and idle
//! routers cost zero work rather than a predicted skip branch.
//!
//! Membership is maintained incrementally at the few sites that create
//! work (buffer writes, NACK resend queueing, packet offers) and rebuilt
//! from scratch after hard-fault purges, which rewrite router state
//! wholesale. Retirement happens once per cycle in the sampling pass.
//!
//! Iteration contract: callers scan word snapshots with
//! [`ActiveSet::word`] and clear bits via `word & (word - 1)`, so
//! removing the *current* index mid-scan is always safe, and a stale bit
//! (index retired after the snapshot) merely visits a router whose
//! phases are no-ops.

/// A fixed-capacity bitset over `0..len` used as an ascending-order
/// worklist.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// An empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Membership test; used by the invariant checker and tests (the
    /// hot path scans word snapshots instead).
    #[cfg_attr(not(any(test, feature = "verify")), allow(dead_code))]
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets membership of `i` to `member` (rebuild-by-predicate helper).
    #[inline]
    pub fn set(&mut self, i: usize, member: bool) {
        if member {
            self.insert(i);
        } else {
            self.remove(i);
        }
    }

    /// `true` when no index is a member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of 64-bit words backing the set.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Snapshot of word `wi`. Indices `wi*64 + tz` for each set bit.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words[wi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        s.remove(63);
        assert!(!s.contains(63));
        s.set(5, true);
        s.set(5, false);
        assert!(!s.contains(5));
    }

    #[test]
    fn ascending_iteration_via_word_snapshots() {
        let mut s = ActiveSet::new(200);
        for i in [3usize, 64, 65, 199] {
            s.insert(i);
        }
        let mut seen = Vec::new();
        for wi in 0..s.num_words() {
            let mut word = s.word(wi);
            while word != 0 {
                seen.push((wi << 6) | word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        assert_eq!(seen, vec![3, 64, 65, 199]);
    }

    #[test]
    fn capacity_rounds_up_to_word() {
        assert_eq!(ActiveSet::new(0).num_words(), 0);
        assert_eq!(ActiveSet::new(1).num_words(), 1);
        assert_eq!(ActiveSet::new(64).num_words(), 1);
        assert_eq!(ActiveSet::new(65).num_words(), 2);
    }
}
