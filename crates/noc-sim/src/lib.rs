//! A cycle-accurate Network-on-Chip simulator.
//!
//! `noc-sim` models a 2D-mesh NoC at flit granularity with the canonical
//! 4-stage virtual-channel router pipeline (buffer write, route
//! computation, VC allocation, switch allocation/traversal), credit-based
//! flow control, X-Y routing, and hop-level ARQ machinery. It is the
//! Booksim-equivalent substrate on which the `rlnoc-core` crate builds the
//! paper's fault-tolerant schemes.
//!
//! Everything stochastic takes an explicit seed; two runs with identical
//! inputs are bit-identical.
//!
//! # Architecture
//!
//! * [`topology`] — mesh, node ids, ports, links.
//! * [`config`] — static parameters (defaults = the paper's Table II).
//! * [`flit`] — packets, flits, deterministic payloads.
//! * [`routing`] — X-Y route computation and path enumeration.
//! * [`arbiter`] — round-robin arbiters for VA/SA.
//! * [`router`] — per-router pipeline state.
//! * [`network`] — the simulation engine.
//! * [`error_control`] — the pluggable link-protection trait.
//! * [`traffic`] — synthetic patterns; [`trace`] — trace replay.
//! * [`stats`] — latency, epoch features, and energy event counters.
//!
//! # Example
//!
//! ```
//! use noc_sim::config::NocConfig;
//! use noc_sim::error_control::PerfectLink;
//! use noc_sim::network::Network;
//! use noc_sim::traffic::{SyntheticSource, TrafficPattern, TrafficSource};
//!
//! let config = NocConfig::default(); // 8×8 mesh, Table II parameters
//! let mut net = Network::new(config, PerfectLink::new(), 7);
//! let mut traffic = SyntheticSource::new(
//!     net.mesh(),
//!     TrafficPattern::UniformRandom,
//!     0.01,
//!     7,
//! );
//! for _ in 0..2_000 {
//!     let cycle = net.cycle();
//!     let mut offers = Vec::new();
//!     traffic.generate(cycle, &mut |s, d| offers.push((s, d)));
//!     for (s, d) in offers {
//!         net.offer(s, d);
//!     }
//!     net.step();
//! }
//! assert!(net.stats().packets_delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod config;
pub mod error_control;
pub mod flit;
pub mod network;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod traffic;
mod worklist;

pub use config::NocConfig;
pub use error_control::{
    EjectOutcome, ErrorControl, HopOutcome, PerfectLink, ScriptedErrorControl, TransferKind,
};
pub use flit::{Flit, FlitKind, Packet, PacketClass, PacketId};
pub use network::Network;
pub use stats::{EventCounters, LatencyStats, NetworkStats, RouterEpochStats};
pub use topology::{Coord, Direction, LinkId, Mesh, NodeId, NUM_PORTS};
pub use traffic::{SyntheticSource, TrafficPattern, TrafficSource};
