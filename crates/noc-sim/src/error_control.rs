//! The error-control extension point.
//!
//! The simulator itself is fault-agnostic: every flit that crosses a link
//! or ejects at a destination is routed through an [`ErrorControl`]
//! implementation, which may corrupt the payload (injecting timing
//! faults), correct it (link SECDED), reject it (raising a hop-level
//! NACK), request end-to-end retransmission (destination CRC check), and
//! shape the link's transmission timing (the proposed scheme's operation
//! modes 2 and 3).
//!
//! The `rlnoc-core` crate implements the paper's four schemes on top of
//! this trait; [`PerfectLink`] is the built-in no-fault implementation
//! used for baseline calibration and simulator testing.

use crate::flit::Flit;
use crate::stats::EventCounters;
use crate::topology::LinkId;

/// Why a flit is crossing a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// First transmission of this flit on this hop.
    Original,
    /// The proactive duplicate sent one cycle after the original
    /// (operation mode 2).
    PreRetransmitCopy,
    /// A retransmission triggered by a hop-level NACK.
    HopRetransmit,
}

/// The receiving side's verdict on a hop transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopOutcome {
    /// The flit arrived usable (payload possibly mutated in place by
    /// injected faults that escaped detection).
    Delivered,
    /// The flit arrived with a single-bit error that the link SECDED
    /// decoder corrected.
    DeliveredCorrected,
    /// The flit arrived with an uncorrectable error and is rejected; the
    /// sender must retransmit (NACK) or the pre-retransmitted copy is
    /// consulted.
    Reject,
}

/// The destination's verdict on a fully reassembled packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EjectOutcome {
    /// The packet passed the end-to-end check and is consumed by the core.
    Accept,
    /// The end-to-end CRC failed; a retransmit request must be sent back
    /// to the source.
    RequestRetransmit,
}

/// Error-control behaviour plugged into the network.
///
/// Implementations decide, per link and per cycle, how flits are
/// protected, corrupted, delayed, and acknowledged. All methods receive
/// the *downstream* router's [`EventCounters`] so coding work is charged
/// to the right power budget.
pub trait ErrorControl {
    /// Processes one flit transfer across `link` at `cycle`.
    ///
    /// The implementation may mutate `flit.payload` in place (fault
    /// injection, SECDED correction) — and **only** `flit.payload`.
    /// The simulator stores in-flight flit bodies in an arena and, for
    /// an operation-mode-2 duplicate, rewinds the slot by restoring the
    /// saved payload words before re-drawing; mutating any other field
    /// would leak the first draw into the duplicate's transfer.
    /// `kind` distinguishes first
    /// transmissions from proactive copies and NACK-triggered resends so
    /// that every attempt gets an independent error draw. `protected`
    /// records whether the link's ECC/ARQ hardware was enabled *when the
    /// flit was sent* — on a dynamic link the mode may have changed while
    /// the flit was in flight, and only protected transfers may return
    /// [`HopOutcome::Reject`].
    fn hop_transfer(
        &mut self,
        link: LinkId,
        flit: &mut Flit,
        cycle: u64,
        kind: TransferKind,
        protected: bool,
        counters: &mut EventCounters,
    ) -> HopOutcome;

    /// Extra cycles the sender must stall before each transmission on
    /// `link` (operation mode 3 returns 2; everything else 0). Stall
    /// cycles occupy the port: they cost bandwidth as well as latency.
    fn tx_delay(&self, link: LinkId) -> u32 {
        let _ = link;
        0
    }

    /// Extra pipeline latency on `link` that does *not* occupy the port —
    /// the SECDED encode/decode stage of an ECC-enabled link (1 cycle).
    /// Pure latency: bandwidth is unaffected.
    fn pipeline_latency(&self, link: LinkId) -> u32 {
        let _ = link;
        0
    }

    /// Whether the sender proactively transmits a duplicate one cycle
    /// after each flit on `link` (operation mode 2).
    fn pre_retransmit(&self, link: LinkId) -> bool {
        let _ = link;
        false
    }

    /// Whether hop-level ARQ (retransmit buffering + ACK/NACK) is active
    /// on `link` — true exactly when the link's ECC hardware is enabled.
    fn hop_arq(&self, link: LinkId) -> bool {
        let _ = link;
        false
    }

    /// End-to-end check over the reassembled packet's flits at ejection.
    ///
    /// The default accepts everything (no destination CRC).
    fn eject_check(
        &mut self,
        flits: &[Flit],
        cycle: u64,
        counters: &mut EventCounters,
    ) -> EjectOutcome {
        let _ = (flits, cycle, counters);
        EjectOutcome::Accept
    }
}

/// The trivial [`ErrorControl`]: a fault-free network with no protection
/// hardware. Used for simulator self-tests and zero-load calibration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectLink;

impl PerfectLink {
    /// Creates the no-op error control.
    pub fn new() -> Self {
        Self
    }
}

impl ErrorControl for PerfectLink {
    #[inline]
    fn hop_transfer(
        &mut self,
        _link: LinkId,
        _flit: &mut Flit,
        _cycle: u64,
        _kind: TransferKind,
        _protected: bool,
        _counters: &mut EventCounters,
    ) -> HopOutcome {
        HopOutcome::Delivered
    }
}

/// Blanket implementation so `Box<dyn ErrorControl>` composes.
impl<E: ErrorControl + ?Sized> ErrorControl for Box<E> {
    fn hop_transfer(
        &mut self,
        link: LinkId,
        flit: &mut Flit,
        cycle: u64,
        kind: TransferKind,
        protected: bool,
        counters: &mut EventCounters,
    ) -> HopOutcome {
        (**self).hop_transfer(link, flit, cycle, kind, protected, counters)
    }

    fn tx_delay(&self, link: LinkId) -> u32 {
        (**self).tx_delay(link)
    }

    fn pipeline_latency(&self, link: LinkId) -> u32 {
        (**self).pipeline_latency(link)
    }

    fn pre_retransmit(&self, link: LinkId) -> bool {
        (**self).pre_retransmit(link)
    }

    fn hop_arq(&self, link: LinkId) -> bool {
        (**self).hop_arq(link)
    }

    fn eject_check(
        &mut self,
        flits: &[Flit],
        cycle: u64,
        counters: &mut EventCounters,
    ) -> EjectOutcome {
        (**self).eject_check(flits, cycle, counters)
    }
}

/// A deterministic, scriptable [`ErrorControl`] for exercising the
/// ARQ/NACK machinery in tests and examples.
///
/// Every inter-router link runs hop ARQ. Protected transfer number `n`
/// (counting from 1, globally) is rejected iff `reject_every` divides
/// `n`. Payloads are never corrupted.
///
/// # Example
///
/// ```
/// use noc_sim::config::NocConfig;
/// use noc_sim::error_control::ScriptedErrorControl;
/// use noc_sim::network::Network;
///
/// // Reject every 5th transfer: heavy but fully recoverable.
/// let config = NocConfig::builder().mesh(4, 4).build();
/// let mut net = Network::new(config, ScriptedErrorControl::reject_every(5), 1);
/// let mesh = net.mesh();
/// net.offer(mesh.node_at(0, 0), mesh.node_at(3, 3));
/// assert!(net.run_until_quiescent(2_000));
/// assert_eq!(net.stats().packets_delivered, 1);
/// assert!(net.stats().hop_nacks > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedErrorControl {
    reject_every: u64,
    transfers: u64,
    tx_delay: u32,
    pre_retransmit: bool,
}

impl ScriptedErrorControl {
    /// Rejects every `n`-th protected transfer (`n == 0` never rejects).
    pub fn reject_every(n: u64) -> Self {
        Self {
            reject_every: n,
            transfers: 0,
            tx_delay: 0,
            pre_retransmit: false,
        }
    }

    /// ARQ links that never reject.
    pub fn reliable() -> Self {
        Self::reject_every(0)
    }

    /// Adds a per-transmission stall (operation-mode-3-style).
    pub fn with_tx_delay(mut self, cycles: u32) -> Self {
        self.tx_delay = cycles;
        self
    }

    /// Enables proactive duplicates (operation-mode-2-style).
    pub fn with_pre_retransmit(mut self, enabled: bool) -> Self {
        self.pre_retransmit = enabled;
        self
    }

    /// Protected transfers processed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

impl ErrorControl for ScriptedErrorControl {
    fn hop_transfer(
        &mut self,
        _link: LinkId,
        _flit: &mut Flit,
        _cycle: u64,
        _kind: TransferKind,
        protected: bool,
        _counters: &mut EventCounters,
    ) -> HopOutcome {
        if !protected {
            return HopOutcome::Delivered;
        }
        self.transfers += 1;
        if self.reject_every > 0 && self.transfers.is_multiple_of(self.reject_every) {
            HopOutcome::Reject
        } else {
            HopOutcome::Delivered
        }
    }

    fn tx_delay(&self, _link: LinkId) -> u32 {
        self.tx_delay
    }

    fn pre_retransmit(&self, _link: LinkId) -> bool {
        self.pre_retransmit
    }

    fn hop_arq(&self, _link: LinkId) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Packet, PacketClass, PacketId};
    use crate::topology::{Direction, NodeId};
    use noc_coding::crc::Crc32;

    fn flit() -> Flit {
        Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(1),
            num_flits: 1,
            class: PacketClass::Data,
            injected_at: 0,
            payload_seed: 1,
        }
        .make_flit(0, 0, &Crc32::new())
    }

    #[test]
    fn perfect_link_delivers_everything() {
        let mut pl = PerfectLink::new();
        let mut counters = EventCounters::default();
        let link = LinkId {
            src: NodeId(0),
            dir: Direction::East,
        };
        let mut f = flit();
        let before = f;
        for kind in [
            TransferKind::Original,
            TransferKind::PreRetransmitCopy,
            TransferKind::HopRetransmit,
        ] {
            assert_eq!(
                pl.hop_transfer(link, &mut f, 0, kind, true, &mut counters),
                HopOutcome::Delivered
            );
        }
        assert_eq!(f, before, "perfect link must not corrupt payload");
        assert_eq!(pl.tx_delay(link), 0);
        assert!(!pl.pre_retransmit(link));
        assert!(!pl.hop_arq(link));
    }

    #[test]
    fn default_eject_check_accepts() {
        let mut pl = PerfectLink::new();
        let mut counters = EventCounters::default();
        let flits = vec![flit()];
        assert_eq!(
            pl.eject_check(&flits, 0, &mut counters),
            EjectOutcome::Accept
        );
    }

    #[test]
    fn boxed_error_control_delegates() {
        let mut boxed: Box<dyn ErrorControl> = Box::new(PerfectLink::new());
        let mut counters = EventCounters::default();
        let link = LinkId {
            src: NodeId(0),
            dir: Direction::East,
        };
        let mut f = flit();
        assert_eq!(
            boxed.hop_transfer(
                link,
                &mut f,
                0,
                TransferKind::Original,
                false,
                &mut counters
            ),
            HopOutcome::Delivered
        );
        assert_eq!(boxed.tx_delay(link), 0);
    }
}
