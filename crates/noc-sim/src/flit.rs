//! Flits, packets, and payload generation.
//!
//! Data moves through the network as *packets* segmented into fixed-size
//! *flits* (128 bits each in the paper's configuration). The head flit
//! carries routing information; every flit carries its own end-to-end CRC
//! computed by the source router's CRC encoder.

use crate::topology::NodeId;
use noc_coding::crc::Crc32;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; frees the virtual channel.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// `true` for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// The semantic class of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Ordinary data traffic from the workload.
    Data,
    /// A retransmission request sent from a destination back to the source
    /// after an end-to-end CRC failure (the CRC scheme's NACK-to-source).
    RetransmitRequest {
        /// The data packet that must be re-sent.
        of: PacketId,
    },
}

impl PacketClass {
    /// `true` for control (non-data) packets.
    pub fn is_control(self) -> bool {
        matches!(self, PacketClass::RetransmitRequest { .. })
    }
}

/// One 128-bit flow-control unit.
///
/// Payload corruption is applied *in place* by the fault layer; the
/// separate [`Flit::ground_truth_crc`] lets the destination distinguish
/// genuine corruption from clean delivery without re-deriving the original
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flit index within the packet (0-based).
    pub index: u8,
    /// End-to-end retransmission attempt (0 = first transmission).
    pub attempt: u8,
    /// Packet class, replicated on every flit for ejection handling.
    pub class: PacketClass,
    /// 128-bit payload as two 64-bit words.
    pub payload: [u64; 2],
    /// CRC-32 computed over the payload by the source CRC encoder.
    pub crc: u32,
    /// Cycle at which the packet was first enqueued at the source NI
    /// (retransmissions keep the original time so end-to-end latency
    /// includes recovery).
    pub injected_at: u64,
}

impl Flit {
    /// Returns `true` when the stored CRC matches the current payload —
    /// the destination router's CRC decoder.
    pub fn crc_ok(&self, crc: &Crc32) -> bool {
        crc.checksum_words(&self.payload) == self.crc
    }

    /// Flips bit `bit` (0..128) of the payload, as a link fault would.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 128`.
    pub fn flip_payload_bit(&mut self, bit: u32) {
        assert!(bit < 128, "payload bit {bit} out of range");
        self.payload[(bit / 64) as usize] ^= 1u64 << (bit % 64);
    }

    /// Flips every listed payload bit in one word-wise pass: the
    /// positions are accumulated into two 64-bit XOR masks applied
    /// once. For distinct positions this equals repeated
    /// [`flip_payload_bit`](Self::flip_payload_bit) calls.
    ///
    /// # Panics
    ///
    /// Panics if any bit is `>= 128`.
    pub fn flip_payload_bits(&mut self, bits: &[u32]) {
        let (mut lo, mut hi) = (0u64, 0u64);
        for &bit in bits {
            assert!(bit < 128, "payload bit {bit} out of range");
            if bit < 64 {
                lo ^= 1u64 << bit;
            } else {
                hi ^= 1u64 << (bit - 64);
            }
        }
        self.payload[0] ^= lo;
        self.payload[1] ^= hi;
    }
}

/// A packet descriptor held by the source protocol state until delivery is
/// confirmed (needed for source retransmission in the CRC scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Number of flits.
    pub num_flits: u8,
    /// Packet class.
    pub class: PacketClass,
    /// Cycle of first injection into the source queue.
    pub injected_at: u64,
    /// Seed from which the deterministic payload is derived.
    pub payload_seed: u64,
}

impl Packet {
    /// Deterministic payload for flit `index` (splitmix64 over the seed).
    pub fn payload_for(&self, index: u8) -> [u64; 2] {
        [
            splitmix64(self.payload_seed ^ (u64::from(index) << 32)),
            splitmix64(
                self.payload_seed
                    .wrapping_add(u64::from(index))
                    .wrapping_mul(0x9E37),
            ),
        ]
    }

    /// Materializes flit `index` (with CRC encoded) for transmission
    /// attempt `attempt`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_flits`.
    pub fn make_flit(&self, index: u8, attempt: u8, crc: &Crc32) -> Flit {
        assert!(index < self.num_flits, "flit index out of range");
        let kind = match (self.num_flits, index) {
            (1, _) => FlitKind::HeadTail,
            (_, 0) => FlitKind::Head,
            (n, i) if i == n - 1 => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        let payload = self.payload_for(index);
        Flit {
            packet: self.id,
            kind,
            src: self.src,
            dst: self.dst,
            index,
            attempt,
            class: self.class,
            payload,
            crc: crc.checksum_words(&payload),
            injected_at: self.injected_at,
        }
    }
}

/// A handle into a [`FlitArena`] slot.
///
/// Four bytes instead of a ~64-byte [`Flit`] body: events, input-VC
/// FIFOs, and reassembly buffers move handles, and the flit body is
/// written once at injection and mutated in place by the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitRef(u32);

/// Slab allocator for in-flight flit bodies.
///
/// Slots are recycled through a free list, so a steady-state simulation
/// performs no per-flit heap allocation: the slab grows to the peak
/// number of simultaneously in-flight flits and then stays flat.
///
/// # Example
///
/// ```
/// use noc_sim::flit::{FlitArena, Packet, PacketClass, PacketId};
/// use noc_sim::topology::NodeId;
/// use noc_coding::crc::Crc32;
///
/// let mut arena = FlitArena::new();
/// let packet = Packet {
///     id: PacketId(1), src: NodeId(0), dst: NodeId(1), num_flits: 1,
///     class: PacketClass::Data, injected_at: 0, payload_seed: 7,
/// };
/// let r = arena.alloc(packet.make_flit(0, 0, &Crc32::new()));
/// assert_eq!(arena[r].packet, PacketId(1));
/// arena.free(r);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlitArena {
    slots: Vec<Flit>,
    /// Debug-only double-free/use-after-free tripwire (checked via
    /// `debug_assert`; one byte per slot, untouched in release reads).
    occupied: Vec<bool>,
    free: Vec<u32>,
    live: usize,
}

impl FlitArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `flit` in a recycled (or new) slot and returns its handle.
    #[inline]
    pub fn alloc(&mut self, flit: Flit) -> FlitRef {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(!self.occupied[idx as usize], "free list holds a live slot");
            self.slots[idx as usize] = flit;
            self.occupied[idx as usize] = true;
            FlitRef(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
            self.slots.push(flit);
            self.occupied.push(true);
            FlitRef(idx)
        }
    }

    /// Releases a slot back to the free list.
    #[inline]
    pub fn free(&mut self, r: FlitRef) {
        debug_assert!(self.occupied[r.0 as usize], "double free of flit slot");
        self.occupied[r.0 as usize] = false;
        self.live -= 1;
        self.free.push(r.0);
    }

    /// Number of live (allocated, unfreed) flits.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (the high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl std::ops::Index<FlitRef> for FlitArena {
    type Output = Flit;

    #[inline]
    fn index(&self, r: FlitRef) -> &Flit {
        debug_assert!(self.occupied[r.0 as usize], "read of freed flit slot");
        &self.slots[r.0 as usize]
    }
}

impl std::ops::IndexMut<FlitRef> for FlitArena {
    #[inline]
    fn index_mut(&mut self, r: FlitRef) -> &mut Flit {
        debug_assert!(self.occupied[r.0 as usize], "write to freed flit slot");
        &mut self.slots[r.0 as usize]
    }
}

/// A dense, sliding-window map keyed by monotonically increasing
/// [`PacketId`]s.
///
/// The network hands out packet ids from a counter, so at any instant
/// the live keys occupy a contiguous-ish band `[base, base + len)`.
/// This replaces a `HashMap<PacketId, T>` with a `VecDeque<Option<T>>`
/// indexed by `id - base`: O(1) access with no hashing, and the window
/// front advances as the oldest packets complete.
#[derive(Debug, Clone)]
pub struct PacketWindow<T> {
    base: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> Default for PacketWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PacketWindow<T> {
    /// Creates an empty window.
    pub fn new() -> Self {
        Self {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `value` under `id`, returning the previous entry if one
    /// existed.
    ///
    /// Ids are usually at or above the window base, but an id the base
    /// has already slid past may legitimately return (destination
    /// reassembly of an end-to-end retransmission); the window then
    /// grows downward to cover it again.
    pub fn insert(&mut self, id: PacketId, value: T) -> Option<T> {
        if self.live == 0 {
            // Empty window: rebase instead of bridging the gap with
            // vacant slots.
            self.base = id.0;
            self.slots.clear();
        } else if id.0 < self.base {
            for _ in id.0..self.base {
                self.slots.push_front(None);
            }
            self.base = id.0;
        }
        let idx = (id.0 - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.live += 1;
        }
        prev
    }

    /// Mutable access to the entry under `id`.
    pub fn get_mut(&mut self, id: PacketId) -> Option<&mut T> {
        if id.0 < self.base {
            return None;
        }
        let idx = (id.0 - self.base) as usize;
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    /// Iterates over the live entries (window order, i.e. by id).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Removes and returns the entry under `id`, sliding the window
    /// base past any leading vacancies.
    pub fn remove(&mut self, id: PacketId) -> Option<T> {
        if id.0 < self.base {
            return None;
        }
        let idx = (id.0 - self.base) as usize;
        let removed = self.slots.get_mut(idx).and_then(Option::take);
        if removed.is_some() {
            self.live -= 1;
        }
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        removed
    }
}

/// The splitmix64 mixing function — used for deterministic payload
/// derivation so retransmitted packets carry identical bits.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(num_flits: u8) -> Packet {
        Packet {
            id: PacketId(42),
            src: NodeId(0),
            dst: NodeId(63),
            num_flits,
            class: PacketClass::Data,
            injected_at: 100,
            payload_seed: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn flit_kinds_follow_position() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        assert_eq!(p.make_flit(0, 0, &crc).kind, FlitKind::Head);
        assert_eq!(p.make_flit(1, 0, &crc).kind, FlitKind::Body);
        assert_eq!(p.make_flit(2, 0, &crc).kind, FlitKind::Body);
        assert_eq!(p.make_flit(3, 0, &crc).kind, FlitKind::Tail);
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let crc = Crc32::new();
        let p = sample_packet(1);
        let f = p.make_flit(0, 0, &crc);
        assert_eq!(f.kind, FlitKind::HeadTail);
        assert!(f.kind.is_head() && f.kind.is_tail());
    }

    #[test]
    fn fresh_flit_passes_crc() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        for i in 0..4 {
            assert!(p.make_flit(i, 0, &crc).crc_ok(&crc));
        }
    }

    #[test]
    fn corrupted_flit_fails_crc() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        let mut f = p.make_flit(2, 0, &crc);
        f.flip_payload_bit(77);
        assert!(!f.crc_ok(&crc));
    }

    #[test]
    fn payload_is_deterministic_across_attempts() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        let a = p.make_flit(1, 0, &crc);
        let b = p.make_flit(1, 3, &crc);
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.crc, b.crc);
        assert_eq!(b.attempt, 3);
    }

    #[test]
    fn payloads_differ_across_flits() {
        let p = sample_packet(4);
        assert_ne!(p.payload_for(0), p.payload_for(1));
    }

    #[test]
    fn flip_payload_bit_round_trips() {
        let crc = Crc32::new();
        let p = sample_packet(2);
        let mut f = p.make_flit(0, 0, &crc);
        let orig = f.payload;
        f.flip_payload_bit(127);
        assert_ne!(f.payload, orig);
        f.flip_payload_bit(127);
        assert_eq!(f.payload, orig);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        let crc = Crc32::new();
        let mut f = sample_packet(1).make_flit(0, 0, &crc);
        f.flip_payload_bit(128);
    }

    #[test]
    fn batch_flip_equals_sequential_flips() {
        let crc = Crc32::new();
        for bits in [
            &[0u32][..],
            &[63, 64],
            &[0, 1, 127],
            &[5, 70, 100],
            &[127, 64, 63],
            &[],
        ] {
            let mut a = sample_packet(3).make_flit(0, 0, &crc);
            let mut b = a;
            for &bit in bits {
                a.flip_payload_bit(bit);
            }
            b.flip_payload_bits(bits);
            assert_eq!(a, b, "bits {bits:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_flip_out_of_range_panics() {
        let crc = Crc32::new();
        let mut f = sample_packet(1).make_flit(0, 0, &crc);
        f.flip_payload_bits(&[3, 128]);
    }

    #[test]
    #[should_panic(expected = "flit index out of range")]
    fn make_flit_out_of_range_panics() {
        let crc = Crc32::new();
        let _ = sample_packet(2).make_flit(2, 0, &crc);
    }

    #[test]
    fn control_class_is_control() {
        assert!(PacketClass::RetransmitRequest { of: PacketId(1) }.is_control());
        assert!(!PacketClass::Data.is_control());
    }

    #[test]
    fn display_impls() {
        assert_eq!(PacketId(9).to_string(), "p9");
    }

    #[test]
    fn arena_recycles_slots() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        let mut arena = FlitArena::new();
        let a = arena.alloc(p.make_flit(0, 0, &crc));
        let b = arena.alloc(p.make_flit(1, 0, &crc));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena[a].index, 0);
        assert_eq!(arena[b].index, 1);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        // The freed slot is reused: capacity stays flat.
        let c = arena.alloc(p.make_flit(2, 0, &crc));
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena[c].index, 2);
        // In-place mutation is visible through the handle.
        arena[c].flip_payload_bit(5);
        assert!(!arena[c].crc_ok(&crc));
    }

    #[test]
    fn arena_steady_state_allocates_nothing_new() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        let mut arena = FlitArena::new();
        let refs: Vec<_> = (0..4)
            .map(|i| arena.alloc(p.make_flit(i, 0, &crc)))
            .collect();
        for r in refs {
            arena.free(r);
        }
        let peak = arena.capacity();
        for _ in 0..10 {
            let refs: Vec<_> = (0..4)
                .map(|i| arena.alloc(p.make_flit(i, 0, &crc)))
                .collect();
            for r in refs {
                arena.free(r);
            }
        }
        assert_eq!(arena.capacity(), peak, "freelist must recycle all slots");
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn packet_window_basic_map_semantics() {
        let mut w: PacketWindow<&str> = PacketWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.insert(PacketId(0), "a"), None);
        assert_eq!(w.insert(PacketId(2), "c"), None);
        assert_eq!(w.len(), 2);
        assert_eq!(w.get_mut(PacketId(1)), None);
        assert_eq!(w.get_mut(PacketId(2)), Some(&mut "c"));
        assert_eq!(w.insert(PacketId(2), "C"), Some("c"));
        assert_eq!(w.remove(PacketId(0)), Some("a"));
        assert_eq!(w.remove(PacketId(0)), None, "double remove is None");
        assert_eq!(w.remove(PacketId(2)), Some("C"));
        assert!(w.is_empty());
    }

    #[test]
    fn packet_window_slides_past_vacancies() {
        let mut w: PacketWindow<u32> = PacketWindow::new();
        // Ids 1 and 3 are never inserted (e.g. control packets).
        w.insert(PacketId(0), 10);
        w.insert(PacketId(2), 20);
        w.insert(PacketId(4), 40);
        w.remove(PacketId(0));
        // Base slides over the id-1 vacancy straight to 2.
        assert_eq!(w.base, 2);
        w.remove(PacketId(2));
        assert_eq!(w.base, 4);
        assert_eq!(w.remove(PacketId(4)), Some(40));
        assert_eq!(w.slots.len(), 0, "fully drained window holds no slots");
        // Stale keys behind the base answer None, like a HashMap would.
        assert_eq!(w.get_mut(PacketId(1)), None);
        assert_eq!(w.remove(PacketId(3)), None);
    }

    #[test]
    fn packet_window_grows_downward_behind_base() {
        let mut w: PacketWindow<u32> = PacketWindow::new();
        // An empty window rebases to the inserted id, even a lower one.
        w.insert(PacketId(9), 90);
        w.remove(PacketId(9));
        w.insert(PacketId(3), 30);
        assert_eq!(w.base, 3);
        // A live window grows downward over the gap instead.
        w.insert(PacketId(1), 10);
        assert_eq!(w.base, 1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.get_mut(PacketId(2)), None, "gap slot stays vacant");
        assert_eq!(w.remove(PacketId(1)), Some(10));
        assert_eq!(w.base, 3, "base slides back up past the gap");
        assert_eq!(w.remove(PacketId(3)), Some(30));
        assert!(w.is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_single_flip_breaks_crc(seed: u64, bit in 0u32..128) {
            let crc = Crc32::new();
            let p = Packet {
                id: PacketId(1),
                src: NodeId(0),
                dst: NodeId(1),
                num_flits: 1,
                class: PacketClass::Data,
                injected_at: 0,
                payload_seed: seed,
            };
            let mut f = p.make_flit(0, 0, &crc);
            f.flip_payload_bit(bit);
            prop_assert!(!f.crc_ok(&crc));
        }

        #[test]
        fn splitmix_is_injective_on_small_range(a in 0u64..10_000, b in 0u64..10_000) {
            prop_assume!(a != b);
            prop_assert_ne!(splitmix64(a), splitmix64(b));
        }
    }
}
