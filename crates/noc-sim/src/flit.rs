//! Flits, packets, and payload generation.
//!
//! Data moves through the network as *packets* segmented into fixed-size
//! *flits* (128 bits each in the paper's configuration). The head flit
//! carries routing information; every flit carries its own end-to-end CRC
//! computed by the source router's CRC encoder.

use crate::topology::NodeId;
use noc_coding::crc::Crc32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; frees the virtual channel.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// `true` for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// The semantic class of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Ordinary data traffic from the workload.
    Data,
    /// A retransmission request sent from a destination back to the source
    /// after an end-to-end CRC failure (the CRC scheme's NACK-to-source).
    RetransmitRequest {
        /// The data packet that must be re-sent.
        of: PacketId,
    },
}

impl PacketClass {
    /// `true` for control (non-data) packets.
    pub fn is_control(self) -> bool {
        matches!(self, PacketClass::RetransmitRequest { .. })
    }
}

/// One 128-bit flow-control unit.
///
/// Payload corruption is applied *in place* by the fault layer; the
/// separate [`Flit::ground_truth_crc`] lets the destination distinguish
/// genuine corruption from clean delivery without re-deriving the original
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flit index within the packet (0-based).
    pub index: u8,
    /// End-to-end retransmission attempt (0 = first transmission).
    pub attempt: u8,
    /// Packet class, replicated on every flit for ejection handling.
    pub class: PacketClass,
    /// 128-bit payload as two 64-bit words.
    pub payload: [u64; 2],
    /// CRC-32 computed over the payload by the source CRC encoder.
    pub crc: u32,
    /// Cycle at which the packet was first enqueued at the source NI
    /// (retransmissions keep the original time so end-to-end latency
    /// includes recovery).
    pub injected_at: u64,
}

impl Flit {
    /// Returns `true` when the stored CRC matches the current payload —
    /// the destination router's CRC decoder.
    pub fn crc_ok(&self, crc: &Crc32) -> bool {
        crc.checksum_words(&self.payload) == self.crc
    }

    /// Flips bit `bit` (0..128) of the payload, as a link fault would.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 128`.
    pub fn flip_payload_bit(&mut self, bit: u32) {
        assert!(bit < 128, "payload bit {bit} out of range");
        self.payload[(bit / 64) as usize] ^= 1u64 << (bit % 64);
    }
}

/// A packet descriptor held by the source protocol state until delivery is
/// confirmed (needed for source retransmission in the CRC scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Number of flits.
    pub num_flits: u8,
    /// Packet class.
    pub class: PacketClass,
    /// Cycle of first injection into the source queue.
    pub injected_at: u64,
    /// Seed from which the deterministic payload is derived.
    pub payload_seed: u64,
}

impl Packet {
    /// Deterministic payload for flit `index` (splitmix64 over the seed).
    pub fn payload_for(&self, index: u8) -> [u64; 2] {
        [
            splitmix64(self.payload_seed ^ (u64::from(index) << 32)),
            splitmix64(
                self.payload_seed
                    .wrapping_add(u64::from(index))
                    .wrapping_mul(0x9E37),
            ),
        ]
    }

    /// Materializes flit `index` (with CRC encoded) for transmission
    /// attempt `attempt`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_flits`.
    pub fn make_flit(&self, index: u8, attempt: u8, crc: &Crc32) -> Flit {
        assert!(index < self.num_flits, "flit index out of range");
        let kind = match (self.num_flits, index) {
            (1, _) => FlitKind::HeadTail,
            (_, 0) => FlitKind::Head,
            (n, i) if i == n - 1 => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        let payload = self.payload_for(index);
        Flit {
            packet: self.id,
            kind,
            src: self.src,
            dst: self.dst,
            index,
            attempt,
            class: self.class,
            payload,
            crc: crc.checksum_words(&payload),
            injected_at: self.injected_at,
        }
    }
}

/// The splitmix64 mixing function — used for deterministic payload
/// derivation so retransmitted packets carry identical bits.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(num_flits: u8) -> Packet {
        Packet {
            id: PacketId(42),
            src: NodeId(0),
            dst: NodeId(63),
            num_flits,
            class: PacketClass::Data,
            injected_at: 100,
            payload_seed: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn flit_kinds_follow_position() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        assert_eq!(p.make_flit(0, 0, &crc).kind, FlitKind::Head);
        assert_eq!(p.make_flit(1, 0, &crc).kind, FlitKind::Body);
        assert_eq!(p.make_flit(2, 0, &crc).kind, FlitKind::Body);
        assert_eq!(p.make_flit(3, 0, &crc).kind, FlitKind::Tail);
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let crc = Crc32::new();
        let p = sample_packet(1);
        let f = p.make_flit(0, 0, &crc);
        assert_eq!(f.kind, FlitKind::HeadTail);
        assert!(f.kind.is_head() && f.kind.is_tail());
    }

    #[test]
    fn fresh_flit_passes_crc() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        for i in 0..4 {
            assert!(p.make_flit(i, 0, &crc).crc_ok(&crc));
        }
    }

    #[test]
    fn corrupted_flit_fails_crc() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        let mut f = p.make_flit(2, 0, &crc);
        f.flip_payload_bit(77);
        assert!(!f.crc_ok(&crc));
    }

    #[test]
    fn payload_is_deterministic_across_attempts() {
        let crc = Crc32::new();
        let p = sample_packet(4);
        let a = p.make_flit(1, 0, &crc);
        let b = p.make_flit(1, 3, &crc);
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.crc, b.crc);
        assert_eq!(b.attempt, 3);
    }

    #[test]
    fn payloads_differ_across_flits() {
        let p = sample_packet(4);
        assert_ne!(p.payload_for(0), p.payload_for(1));
    }

    #[test]
    fn flip_payload_bit_round_trips() {
        let crc = Crc32::new();
        let p = sample_packet(2);
        let mut f = p.make_flit(0, 0, &crc);
        let orig = f.payload;
        f.flip_payload_bit(127);
        assert_ne!(f.payload, orig);
        f.flip_payload_bit(127);
        assert_eq!(f.payload, orig);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        let crc = Crc32::new();
        let mut f = sample_packet(1).make_flit(0, 0, &crc);
        f.flip_payload_bit(128);
    }

    #[test]
    #[should_panic(expected = "flit index out of range")]
    fn make_flit_out_of_range_panics() {
        let crc = Crc32::new();
        let _ = sample_packet(2).make_flit(2, 0, &crc);
    }

    #[test]
    fn control_class_is_control() {
        assert!(PacketClass::RetransmitRequest { of: PacketId(1) }.is_control());
        assert!(!PacketClass::Data.is_control());
    }

    #[test]
    fn display_impls() {
        assert_eq!(PacketId(9).to_string(), "p9");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_single_flip_breaks_crc(seed: u64, bit in 0u32..128) {
            let crc = Crc32::new();
            let p = Packet {
                id: PacketId(1),
                src: NodeId(0),
                dst: NodeId(1),
                num_flits: 1,
                class: PacketClass::Data,
                injected_at: 0,
                payload_seed: seed,
            };
            let mut f = p.make_flit(0, 0, &crc);
            f.flip_payload_bit(bit);
            prop_assert!(!f.crc_ok(&crc));
        }

        #[test]
        fn splitmix_is_injective_on_small_range(a in 0u64..10_000, b in 0u64..10_000) {
            prop_assume!(a != b);
            prop_assert_ne!(splitmix64(a), splitmix64(b));
        }
    }
}
