//! Scoped wall-clock timers for hot-path spans.
//!
//! A [`TimerHandle`] is resolved once per span name; starting it returns
//! a [`ScopedTimer`] guard that records elapsed nanoseconds into a
//! log-bucket histogram on drop. When telemetry is disabled the handle
//! holds no histogram and `start()` never reads the clock — the entire
//! span costs one branch.

use std::sync::Arc;
use std::time::Instant;

use crate::registry::{HistogramCore, HistogramSnapshot};

/// Reusable handle for timing a named span. Default-constructed handles
/// (disabled telemetry) are inert.
#[derive(Debug, Clone, Default)]
pub struct TimerHandle(pub(crate) Option<Arc<HistogramCore>>);

impl TimerHandle {
    /// Begins a span. The returned guard records on drop; when the
    /// handle is disabled no clock is read and nothing is recorded.
    /// The guard owns its histogram reference, so it does not extend
    /// any borrow of the handle (or the struct holding it).
    #[inline]
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer {
            started: self
                .0
                .as_ref()
                .map(|core| (Arc::clone(core), Instant::now())),
        }
    }

    /// Times `f`, recording its duration, and returns its result.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _span = self.start();
        f()
    }

    /// Whether this handle is backed by a live histogram. Hot paths may
    /// branch on this once per call instead of once per span when a
    /// different (but observably identical) code shape is cheaper with
    /// instrumentation off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Point-in-time snapshot of recorded span durations (nanoseconds).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |c| c.snapshot())
    }
}

/// Drop guard measuring one span.
#[derive(Debug)]
pub struct ScopedTimer {
    started: Option<(Arc<HistogramCore>, Instant)>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((core, t0)) = self.started.take() {
            let ns = t0.elapsed().as_nanos();
            core.record(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn scoped_timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        let handle = TimerHandle(Some(reg.timer_core("span")));
        {
            let _t = handle.start();
            std::hint::black_box(0u64);
        }
        {
            let _t = handle.start();
        }
        let snap = handle.snapshot();
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn time_passes_through_result() {
        let reg = MetricsRegistry::new();
        let handle = TimerHandle(Some(reg.timer_core("span")));
        let out = handle.time(|| 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(handle.snapshot().count, 1);
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let handle = TimerHandle::default();
        {
            let _t = handle.start();
        }
        let out = handle.time(|| 7);
        assert_eq!(out, 7);
        assert_eq!(handle.snapshot(), HistogramSnapshot::default());
    }
}
