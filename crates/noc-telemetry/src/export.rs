//! JSONL and CSV exporters with a stable, versioned schema.
//!
//! JSONL carries everything — a `meta` header line, one `run` line per
//! completed run, `counter` / `gauge` / `histogram` / `timer` lines for
//! registry instruments, and one `epoch` line per epoch record. CSV
//! carries only the epoch series (the part downstream plotting actually
//! consumes), with a fixed column order.
//!
//! Serialization is hand-rolled: the build environment has no
//! `serde_json`, and the schema is small enough that explicit
//! formatting doubles as its documentation.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::series::{EpochRecord, RunSummary};
use crate::Telemetry;

/// Schema version stamped into the JSONL `meta` line. Bump on any
/// backwards-incompatible field change.
pub const SCHEMA_VERSION: u32 = 1;

/// CSV header for the epoch series, fixed column order.
pub const CSV_HEADER: &str =
    "run,phase,epoch,router,utilization,nack_rate,temperature_c,mode,reward,epsilon,max_q_delta";

/// Formats an `f64` as a JSON value (`null` for non-finite inputs).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `Display` omits the fraction for integral floats; keep the
        // token unambiguously a float for downstream type sniffers.
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON double-quoted literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one schema-v1 `run` JSONL line (no trailing newline).
///
/// Shared by [`write_jsonl`] and streaming sinks — `rlnoc-serve`
/// forwards these lines to watch subscribers as telemetry frames, so a
/// streamed summary is byte-identical to the exported one.
pub fn run_summary_jsonl(run: &RunSummary) -> String {
    format!(
        "{{\"type\":\"run\",\"label\":\"{}\",\"wall_seconds\":{},\"cycles\":{},\"cycles_per_sec\":{}}}",
        json_escape(&run.label),
        json_f64(run.wall_seconds),
        run.cycles,
        json_f64(run.cycles_per_sec)
    )
}

/// Renders one schema-v1 `epoch` JSONL line (no trailing newline) for
/// the given run label.
///
/// Shared by [`write_jsonl`] and streaming sinks, so a streamed epoch
/// record is byte-identical to the exported one.
pub fn epoch_record_jsonl(run_label: &str, rec: &EpochRecord) -> String {
    format!(
        "{{\"type\":\"epoch\",\"run\":\"{}\",\"phase\":\"{}\",\"epoch\":{},\"router\":{},\"utilization\":{},\"nack_rate\":{},\"temperature_c\":{},\"mode\":{},\"reward\":{},\"epsilon\":{},\"max_q_delta\":{}}}",
        json_escape(run_label),
        rec.phase.as_str(),
        rec.epoch,
        rec.router,
        json_f64(rec.utilization),
        json_f64(rec.nack_rate),
        json_f64(rec.temperature_c),
        rec.mode,
        json_f64(rec.reward),
        json_f64(rec.epsilon),
        json_f64(rec.max_q_delta)
    )
}

/// Writes the full telemetry state as JSON Lines.
pub fn write_jsonl<W: Write>(telemetry: &Telemetry, mut w: W) -> io::Result<()> {
    let Some(view) = telemetry.export_view() else {
        return Ok(());
    };
    writeln!(
        w,
        "{{\"type\":\"meta\",\"schema_version\":{},\"epoch_records\":{},\"dropped_epoch_records\":{}}}",
        SCHEMA_VERSION,
        view.records.len(),
        view.dropped
    )?;
    for run in &view.runs {
        writeln!(w, "{}", run_summary_jsonl(run))?;
    }
    for (name, value) in &view.counters {
        writeln!(
            w,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        )?;
    }
    for (name, value) in &view.gauges {
        writeln!(
            w,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            json_f64(*value)
        )?;
    }
    for (kind, snaps) in [("histogram", &view.histograms), ("timer", &view.timers)] {
        for (name, snap) in snaps {
            let buckets: Vec<String> = snap
                .buckets
                .iter()
                .map(|(lo, n)| format!("[{lo},{n}]"))
                .collect();
            writeln!(
                w,
                "{{\"type\":\"{kind}\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"mean\":{},\"buckets\":[{}]}}",
                json_escape(name),
                snap.count,
                snap.sum,
                json_f64(snap.mean()),
                buckets.join(",")
            )?;
        }
    }
    for rec in &view.records {
        let label = view.run_label(rec.run);
        writeln!(w, "{}", epoch_record_jsonl(label, rec))?;
    }
    w.flush()
}

/// Writes the epoch series as CSV with the [`CSV_HEADER`] columns.
pub fn write_csv<W: Write>(telemetry: &Telemetry, mut w: W) -> io::Result<()> {
    let Some(view) = telemetry.export_view() else {
        return Ok(());
    };
    writeln!(w, "{CSV_HEADER}")?;
    for rec in &view.records {
        let label = view.run_label(rec.run);
        // Run labels are slash-separated identifiers; quote defensively
        // anyway so arbitrary labels cannot corrupt the table.
        let quoted = if label.contains([',', '"', '\n']) {
            format!("\"{}\"", label.replace('"', "\"\""))
        } else {
            label.to_string()
        };
        writeln!(
            w,
            "{quoted},{},{},{},{},{},{},{},{},{},{}",
            rec.phase.as_str(),
            rec.epoch,
            rec.router,
            rec.utilization,
            rec.nack_rate,
            rec.temperature_c,
            rec.mode,
            rec.reward,
            rec.epsilon,
            rec.max_q_delta
        )?;
    }
    w.flush()
}

/// Writes telemetry to `path`, choosing the format by extension:
/// `.csv` → CSV epoch series, anything else → JSONL.
pub fn export_to_path(telemetry: &Telemetry, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)?;
    let writer = io::BufWriter::new(file);
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
    {
        write_csv(telemetry, writer)
    } else {
        write_jsonl(telemetry, writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpochRecord, Phase, Telemetry};

    fn populated() -> Telemetry {
        let t = Telemetry::enabled();
        t.counter("sim.cycles").add(1000);
        t.gauge("thermal.max_c").set(61.5);
        t.histogram("lat").record(12);
        t.timer("sim.phase.sa_st").time(|| ());
        let run = t.begin_run("RL/uniform/seed1");
        for router in 0..2u16 {
            t.record_epoch(EpochRecord {
                run,
                phase: Phase::Measure,
                epoch: 7,
                router,
                utilization: 0.25,
                nack_rate: 0.0,
                temperature_c: 48.0,
                mode: 2,
                reward: 1.5,
                epsilon: 0.05,
                max_q_delta: 0.001,
            });
        }
        t.finish_run(run, 810_000);
        t
    }

    #[test]
    fn jsonl_has_meta_run_instruments_and_epochs() {
        let t = populated();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert!(lines[0].contains("\"schema_version\":1"));
        assert!(text.contains("\"type\":\"run\""));
        assert!(text.contains("\"label\":\"RL/uniform/seed1\""));
        assert!(text.contains("\"cycles\":810000"));
        assert!(text.contains("\"type\":\"counter\",\"name\":\"sim.cycles\",\"value\":1000"));
        assert!(text.contains("\"type\":\"gauge\",\"name\":\"thermal.max_c\",\"value\":61.5"));
        assert!(text.contains("\"type\":\"histogram\",\"name\":\"lat\""));
        assert!(text.contains("\"type\":\"timer\",\"name\":\"sim.phase.sa_st\""));
        let epochs: Vec<&&str> = lines
            .iter()
            .filter(|l| l.starts_with("{\"type\":\"epoch\""))
            .collect();
        assert_eq!(epochs.len(), 2);
        assert!(epochs[0].contains("\"run\":\"RL/uniform/seed1\""));
        assert!(epochs[0].contains("\"phase\":\"measure\""));
        assert!(epochs[0].contains("\"utilization\":0.25"));
        // Every line parses as a single JSON object at the brace level.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let t = populated();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[1],
            "RL/uniform/seed1,measure,7,0,0.25,0,48,2,1.5,0.05,0.001"
        );
        assert!(lines[2].starts_with("RL/uniform/seed1,measure,7,1,"));
    }

    #[test]
    fn disabled_telemetry_exports_nothing() {
        let t = Telemetry::disabled();
        let mut buf = Vec::new();
        write_jsonl(&t, &mut buf).unwrap();
        assert!(buf.is_empty());
        write_csv(&t, &mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn json_f64_handles_edge_cases() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_to_path_picks_format_by_extension() {
        let t = populated();
        let dir = std::env::temp_dir();
        let jsonl = dir.join("rlnoc_telemetry_test.jsonl");
        let csv = dir.join("rlnoc_telemetry_test.csv");
        export_to_path(&t, &jsonl).unwrap();
        export_to_path(&t, &csv).unwrap();
        let jtext = std::fs::read_to_string(&jsonl).unwrap();
        let ctext = std::fs::read_to_string(&csv).unwrap();
        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&csv).ok();
        assert!(jtext.starts_with("{\"type\":\"meta\""));
        assert!(ctext.starts_with(CSV_HEADER));
    }
}
