//! Per-router per-epoch time series and per-run summaries.
//!
//! The epoch series is a bounded ring buffer: when full, the oldest
//! records are dropped (and counted), so long campaigns cannot exhaust
//! memory. Records are plain `Copy` structs; label resolution happens
//! only at export time.

use std::collections::VecDeque;
use std::time::Instant;

/// Default ring-buffer capacity: 64 routers × 4096 epochs.
pub const DEFAULT_EPOCH_CAPACITY: usize = 262_144;

/// Handle to a run registered with [`crate::Telemetry::begin_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunId(pub(crate) u32);

impl RunId {
    /// Sentinel returned by disabled telemetry; recording against it is
    /// a no-op.
    pub const DISABLED: RunId = RunId(u32::MAX);
}

/// Which phase of an experiment an epoch record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Offline pretraining epochs.
    Pretrain,
    /// Warmup epochs before measurement starts.
    Warmup,
    /// Measured epochs (including the trailing drain).
    #[default]
    Measure,
}

impl Phase {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Pretrain => "pretrain",
            Phase::Warmup => "warmup",
            Phase::Measure => "measure",
        }
    }
}

/// One router's state at the end of one control epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Run this record belongs to.
    pub run: RunId,
    /// Experiment phase the epoch executed in.
    pub phase: Phase,
    /// Control-epoch index within the run.
    pub epoch: u64,
    /// Router (node) index.
    pub router: u16,
    /// Output-link utilization observed over the epoch, in [0, 1].
    pub utilization: f64,
    /// Output NACK rate observed over the epoch, in [0, 1].
    pub nack_rate: f64,
    /// Router temperature at the epoch boundary, degrees Celsius.
    pub temperature_c: f64,
    /// Operation mode chosen for the next epoch (discriminant index).
    pub mode: u8,
    /// Reward delivered to the router's agent this epoch.
    pub reward: f64,
    /// Agent exploration rate at decision time.
    pub epsilon: f64,
    /// Magnitude of the agent's last TD update to the Q-table.
    pub max_q_delta: f64,
}

/// Bounded ring buffer of [`EpochRecord`]s.
#[derive(Debug)]
pub struct EpochSeries {
    records: VecDeque<EpochRecord>,
    capacity: usize,
    dropped: u64,
}

impl EpochSeries {
    /// Creates a series bounded at `capacity` records (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a record, evicting (and counting) the oldest when full.
    pub fn push(&mut self, record: EpochRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the series holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &EpochRecord> {
        self.records.iter()
    }
}

impl Default for EpochSeries {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EPOCH_CAPACITY)
    }
}

/// Completed-run summary produced by [`crate::Telemetry::finish_run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Label the run was registered under.
    pub label: String,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Simulated cycles executed by the run.
    pub cycles: u64,
    /// Simulation throughput, cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// Book-keeping for one registered run.
#[derive(Debug)]
pub(crate) struct RunState {
    pub(crate) label: String,
    pub(crate) started: Instant,
    pub(crate) summary: Option<RunSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, router: u16) -> EpochRecord {
        EpochRecord {
            run: RunId(0),
            phase: Phase::Measure,
            epoch,
            router,
            utilization: 0.5,
            nack_rate: 0.01,
            temperature_c: 47.0,
            mode: 1,
            reward: 2.5,
            epsilon: 0.1,
            max_q_delta: 0.03,
        }
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let mut series = EpochSeries::with_capacity(3);
        for e in 0..5 {
            series.push(record(e, 0));
        }
        assert_eq!(series.len(), 3);
        assert_eq!(series.dropped(), 2);
        let epochs: Vec<u64> = series.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut series = EpochSeries::with_capacity(0);
        series.push(record(0, 0));
        series.push(record(1, 0));
        assert_eq!(series.len(), 1);
        assert_eq!(series.dropped(), 1);
        assert_eq!(series.iter().next().unwrap().epoch, 1);
    }

    #[test]
    fn default_capacity_covers_paper_mesh() {
        let series = EpochSeries::default();
        assert!(series.is_empty());
        assert_eq!(DEFAULT_EPOCH_CAPACITY, 64 * 4096);
        assert_eq!(series.capacity, DEFAULT_EPOCH_CAPACITY);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Pretrain.as_str(), "pretrain");
        assert_eq!(Phase::Warmup.as_str(), "warmup");
        assert_eq!(Phase::Measure.as_str(), "measure");
    }
}
