//! `rlnoc-telemetry`: metrics, tracing, and export for the RL-NoC stack.
//!
//! The subsystem is built around one invariant: **disabled telemetry
//! costs a single branch per instrumentation site**. A [`Telemetry`]
//! handle is either empty (`disabled`) or an `Arc` to shared state
//! (`enabled`); every instrument resolved from a disabled handle is an
//! inert no-op — no clock reads, no atomics, no allocation.
//!
//! Components:
//!
//! - [`MetricsRegistry`] — named [`Counter`] / [`Gauge`] / [`Histogram`]
//!   instruments (histograms use fixed log2 buckets).
//! - [`EpochSeries`] — a bounded ring buffer of per-router per-epoch
//!   [`EpochRecord`]s (utilization, NACK rate, temperature, mode,
//!   reward, epsilon, TD delta).
//! - [`TimerHandle`] / [`ScopedTimer`] — drop-guard spans for hot paths
//!   (router pipeline phases, ARQ handling, TD updates).
//! - [`export`] — JSONL and CSV writers with a stable schema, plus
//!   per-run wall-clock / cycles-per-second summaries.
//!
//! Typical wiring: construct one `Telemetry`, clone it into the
//! simulator / controllers / runner (clones share state), then export
//! once at the end:
//!
//! ```
//! use rlnoc_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! let run = telemetry.begin_run("RL/uniform/seed1");
//! telemetry.counter("sim.cycles").add(1_000);
//! telemetry.finish_run(run, 1_000);
//! let mut out = Vec::new();
//! rlnoc_telemetry::export::write_jsonl(&telemetry, &mut out).unwrap();
//! assert!(!out.is_empty());
//! ```

pub mod export;
mod registry;
mod series;
mod timer;

pub use registry::{
    bucket_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    HISTOGRAM_BUCKETS,
};
pub use series::{EpochRecord, EpochSeries, Phase, RunId, RunSummary, DEFAULT_EPOCH_CAPACITY};
pub use timer::{ScopedTimer, TimerHandle};

use std::sync::{Arc, Mutex};
use std::time::Instant;

use series::RunState;

#[derive(Debug)]
struct Inner {
    registry: MetricsRegistry,
    series: Mutex<EpochSeries>,
    runs: Mutex<Vec<RunState>>,
}

/// Cheap, cloneable telemetry handle. All clones share the same
/// registry, epoch series, and run table; a disabled handle makes every
/// operation a no-op behind one branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle where every operation is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An active handle with the default epoch-series capacity.
    pub fn enabled() -> Self {
        Self::with_epoch_capacity(DEFAULT_EPOCH_CAPACITY)
    }

    /// An active handle whose epoch series keeps at most `capacity`
    /// records (oldest evicted first).
    pub fn with_epoch_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                series: Mutex::new(EpochSeries::with_capacity(capacity)),
                runs: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves the counter named `name` (inert when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::default, |i| i.registry.counter(name))
    }

    /// Resolves the gauge named `name` (inert when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::default, |i| i.registry.gauge(name))
    }

    /// Resolves the histogram named `name` (inert when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::default, |i| i.registry.histogram(name))
    }

    /// Resolves the span timer named `name` (inert when disabled).
    pub fn timer(&self, name: &str) -> TimerHandle {
        TimerHandle(self.inner.as_ref().map(|i| i.registry.timer_core(name)))
    }

    /// Appends one record to the epoch series. No-op when disabled.
    #[inline]
    pub fn record_epoch(&self, record: EpochRecord) {
        if let Some(inner) = &self.inner {
            inner.series.lock().unwrap().push(record);
        }
    }

    /// Number of epoch records currently buffered.
    pub fn epoch_len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.series.lock().unwrap().len())
    }

    /// Clones out the buffered epoch records, oldest-first.
    pub fn epoch_records(&self) -> Vec<EpochRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.series.lock().unwrap().iter().copied().collect()
        })
    }

    /// Registers a run and starts its wall clock. Returns
    /// [`RunId::DISABLED`] when telemetry is disabled.
    pub fn begin_run(&self, label: &str) -> RunId {
        let Some(inner) = &self.inner else {
            return RunId::DISABLED;
        };
        let mut runs = inner.runs.lock().unwrap();
        let id = RunId(u32::try_from(runs.len()).expect("run table overflow"));
        runs.push(RunState {
            label: label.to_string(),
            started: Instant::now(),
            summary: None,
        });
        id
    }

    /// Completes a run: captures wall-clock time and derives simulation
    /// throughput from `cycles`. No-op for [`RunId::DISABLED`] or an
    /// unknown id; finishing twice keeps the first summary.
    pub fn finish_run(&self, id: RunId, cycles: u64) {
        let Some(inner) = &self.inner else { return };
        if id == RunId::DISABLED {
            return;
        }
        let mut runs = inner.runs.lock().unwrap();
        let Some(state) = runs.get_mut(id.0 as usize) else {
            return;
        };
        if state.summary.is_some() {
            return;
        }
        let wall_seconds = state.started.elapsed().as_secs_f64();
        state.summary = Some(RunSummary {
            label: state.label.clone(),
            wall_seconds,
            cycles,
            cycles_per_sec: if wall_seconds > 0.0 {
                cycles as f64 / wall_seconds
            } else {
                0.0
            },
        });
    }

    /// Label a run was registered under (empty for unknown/disabled).
    pub fn run_label(&self, id: RunId) -> String {
        self.inner
            .as_ref()
            .and_then(|i| {
                i.runs
                    .lock()
                    .unwrap()
                    .get(id.0 as usize)
                    .map(|s| s.label.clone())
            })
            .unwrap_or_default()
    }

    /// Summaries of all completed runs, in registration order.
    pub fn run_summaries(&self) -> Vec<RunSummary> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.runs
                .lock()
                .unwrap()
                .iter()
                .filter_map(|s| s.summary.clone())
                .collect()
        })
    }

    /// Snapshot of all counters as `(name, value)`.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.registry.counter_snapshot())
    }

    /// Snapshot of all gauges as `(name, value)`.
    pub fn gauge_snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.registry.gauge_snapshot())
    }

    /// Consistent view of all exportable state, or `None` when
    /// disabled. Used by the [`export`] writers.
    pub(crate) fn export_view(&self) -> Option<ExportView> {
        let inner = self.inner.as_ref()?;
        let series = inner.series.lock().unwrap();
        let runs = inner.runs.lock().unwrap();
        Some(ExportView {
            counters: inner.registry.counter_snapshot(),
            gauges: inner.registry.gauge_snapshot(),
            histograms: inner.registry.histogram_snapshot(),
            timers: inner.registry.timer_snapshot(),
            records: series.iter().copied().collect(),
            dropped: series.dropped(),
            run_labels: runs.iter().map(|s| s.label.clone()).collect(),
            runs: runs.iter().filter_map(|s| s.summary.clone()).collect(),
        })
    }
}

/// Point-in-time copy of everything the exporters need.
pub(crate) struct ExportView {
    pub(crate) counters: Vec<(String, u64)>,
    pub(crate) gauges: Vec<(String, f64)>,
    pub(crate) histograms: Vec<(String, HistogramSnapshot)>,
    pub(crate) timers: Vec<(String, HistogramSnapshot)>,
    pub(crate) records: Vec<EpochRecord>,
    pub(crate) dropped: u64,
    pub(crate) run_labels: Vec<String>,
    pub(crate) runs: Vec<RunSummary>,
}

impl ExportView {
    pub(crate) fn run_label(&self, id: RunId) -> &str {
        self.run_labels
            .get(id.0 as usize)
            .map_or("", String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Telemetry::enabled();
        let b = a.clone();
        a.counter("x").add(2);
        b.counter("x").add(3);
        assert_eq!(a.counter("x").get(), 5);
    }

    #[test]
    fn disabled_handle_is_fully_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c").inc();
        t.gauge("g").set(1.0);
        t.histogram("h").record(1);
        let run = t.begin_run("r");
        assert_eq!(run, RunId::DISABLED);
        t.finish_run(run, 100);
        t.record_epoch(EpochRecord {
            run,
            phase: Phase::Measure,
            epoch: 0,
            router: 0,
            utilization: 0.0,
            nack_rate: 0.0,
            temperature_c: 0.0,
            mode: 0,
            reward: 0.0,
            epsilon: 0.0,
            max_q_delta: 0.0,
        });
        assert_eq!(t.epoch_len(), 0);
        assert!(t.run_summaries().is_empty());
        assert!(t.counter_snapshot().is_empty());
    }

    #[test]
    fn run_lifecycle_produces_summary() {
        let t = Telemetry::enabled();
        let run = t.begin_run("Static/transpose/seed9");
        t.finish_run(run, 2_000_000);
        let summaries = t.run_summaries();
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(s.label, "Static/transpose/seed9");
        assert_eq!(s.cycles, 2_000_000);
        assert!(s.wall_seconds >= 0.0);
        assert!(s.cycles_per_sec >= 0.0);
        // Finishing again must not overwrite the first summary.
        t.finish_run(run, 1);
        assert_eq!(t.run_summaries()[0].cycles, 2_000_000);
    }

    #[test]
    fn epoch_capacity_is_honoured() {
        let t = Telemetry::with_epoch_capacity(2);
        let run = t.begin_run("r");
        for epoch in 0..4 {
            t.record_epoch(EpochRecord {
                run,
                phase: Phase::Measure,
                epoch,
                router: 0,
                utilization: 0.0,
                nack_rate: 0.0,
                temperature_c: 0.0,
                mode: 0,
                reward: 0.0,
                epsilon: 0.0,
                max_q_delta: 0.0,
            });
        }
        assert_eq!(t.epoch_len(), 2);
        let records = t.epoch_records();
        assert_eq!(records[0].epoch, 2);
        assert_eq!(records[1].epoch, 3);
    }

    #[test]
    fn instruments_with_same_name_aggregate() {
        let t = Telemetry::enabled();
        let timer = t.timer("span");
        timer.time(|| ());
        t.timer("span").time(|| ());
        assert_eq!(t.timer("span").snapshot().count, 2);
    }
}
