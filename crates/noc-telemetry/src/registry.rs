//! Named instrument registry: counters, gauges, and log-bucket histograms.
//!
//! Instruments are resolved once by name and then shared as `Arc`s, so the
//! hot path never touches the registry lock — a counter increment is a
//! single relaxed atomic add, a gauge store a single atomic store.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event counter. Cloning shares the underlying cell; a
/// default-constructed counter is a no-op (disabled telemetry).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter. No-op when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one. No-op when disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Whether this handle is wired to a live cell.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Last-value gauge holding an `f64` (stored as its bit pattern in an
/// `AtomicU64`). A default-constructed gauge is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Stores `v` as the gauge's current value. No-op when disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }

    /// Adds `delta` (may be negative) to the gauge's current value with a
    /// compare-and-swap loop, so concurrent adders never lose updates —
    /// the contract level/occupancy gauges (e.g. the runner's queue
    /// depth) need. No-op when disabled.
    pub fn add(&self, delta: f64) {
        let Some(cell) = &self.0 else { return };
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

/// Number of log2 buckets: values are classified by bit length, so a
/// `u64` sample falls in bucket `64 - leading_zeros` (0 for the value 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Shared histogram storage: fixed log2 buckets plus count and sum.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            buckets,
        }
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Log2-bucket histogram handle. A default-constructed histogram is a
/// no-op (disabled telemetry).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample. No-op when disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Point-in-time snapshot (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |c| c.snapshot())
    }

    /// Whether this handle is wired to live storage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Immutable view of a histogram's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Registry of named instruments. Same name → same underlying cell, so
/// independently resolved handles aggregate together.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    timers: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        let cell = map.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(cell)))
    }

    /// Resolves (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        let cell = map.entry(name.to_string()).or_default();
        Gauge(Some(Arc::clone(cell)))
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()));
        Histogram(Some(Arc::clone(cell)))
    }

    /// Resolves (creating on first use) the timer histogram named `name`.
    /// Timers share the histogram representation but record nanoseconds
    /// and export under a distinct record type.
    pub(crate) fn timer_core(&self, name: &str) -> Arc<HistogramCore> {
        let mut map = self.timers.lock().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()));
        Arc::clone(cell)
    }

    /// Snapshot of all counters as `(name, value)`, name-ascending.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)`, name-ascending.
    pub fn gauge_snapshot(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect()
    }

    /// Snapshot of all histograms, name-ascending.
    pub fn histogram_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Snapshot of all timers (values are nanoseconds), name-ascending.
    pub fn timer_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.timers
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sim.cycles");
        let b = reg.counter("sim.cycles");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.counter_snapshot(), vec![("sim.cycles".into(), 4)]);
    }

    #[test]
    fn disabled_instruments_are_inert() {
        let c = Counter::default();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::default();
        g.set(1.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(7);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn gauge_stores_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("thermal.max_c");
        g.set(71.25);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
        let snap = reg.gauge_snapshot();
        assert_eq!(snap, vec![("thermal.max_c".into(), -3.5)]);
    }

    #[test]
    fn gauge_add_accumulates_and_survives_contention() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("runner.queue_depth");
        g.add(5.0);
        g.add(-2.0);
        assert_eq!(g.get(), 3.0);
        // Disabled gauges stay inert.
        let d = Gauge::default();
        d.add(4.0);
        assert_eq!(d.get(), 0.0);
        // Concurrent adders must not lose increments.
        let g2 = g.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        g2.add(1.0);
                    }
                });
            }
        });
        assert_eq!(g.get(), 4_003.0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        // 0 → bucket 0; 1 → bucket 1 (lower bound 1); 2,3 → bucket 2
        // (lower bound 2); 4..=7 → bucket 3 (lower bound 4).
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 28);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (4, 4)]);
        assert!((snap.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("big");
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(1u64 << 63, 1)]);
    }

    #[test]
    fn bucket_lower_bounds_are_powers_of_two() {
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(2), 2);
        assert_eq!(bucket_lower_bound(11), 1024);
        assert_eq!(bucket_lower_bound(64), 1u64 << 63);
    }
}
