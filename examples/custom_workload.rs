//! Define a custom phase-structured workload, run it under two schemes,
//! and round-trip an injection trace through the text format.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use rlnoc::core::benchmarks::{PhaseSpec, WorkloadProfile};
use rlnoc::core::experiment::{ErrorControlScheme, Experiment};
use rlnoc::sim::topology::{Mesh, NodeId};
use rlnoc::sim::trace::{Trace, TraceEvent};
use rlnoc::sim::traffic::{TrafficPattern, TrafficSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bursty workload with a hotspot phase — e.g. a MapReduce-style
    // shuffle alternating with local computation.
    let workload = WorkloadProfile {
        name: "shuffle",
        phases: vec![
            PhaseSpec {
                cycles: 400,
                injection_rate: 0.025,
                pattern: TrafficPattern::Hotspot {
                    hotspot: NodeId(36),
                    fraction: 0.4,
                },
            },
            PhaseSpec {
                cycles: 600,
                injection_rate: 0.008,
                pattern: TrafficPattern::NearestNeighbor,
            },
        ],
        duration_cycles: 25_000,
    };

    for scheme in [
        ErrorControlScheme::StaticCrc,
        ErrorControlScheme::ProposedRl,
    ] {
        let report = Experiment::builder()
            .scheme(scheme)
            .workload(workload.clone())
            .seed(9)
            .pretrain_cycles(150_000)
            .build()?
            .run();
        println!(
            "{:<8} latency {:>7.1} cycles, retx {:>8.1} pkts, efficiency {:.3e} flits/J",
            scheme.to_string(),
            report.avg_latency_cycles,
            report.retransmitted_packets_equiv,
            report.energy_efficiency()
        );
    }

    // Capture the first 2 000 cycles of the workload as a trace file and
    // read it back — the interchange path for externally captured traces.
    let mesh = Mesh::new(8, 8);
    let mut source = workload.source(mesh, 9);
    let mut trace = Trace::new();
    for cycle in 0..2_000 {
        source.generate(cycle, &mut |src, dst| {
            trace.push(TraceEvent { cycle, src, dst });
        });
    }
    let mut text = Vec::new();
    trace.save(&mut text)?;
    let restored = Trace::load(text.as_slice())?;
    println!(
        "\ntrace round-trip: {} events, horizon {} cycles, intact: {}",
        restored.len(),
        restored.horizon(),
        restored == trace
    );
    Ok(())
}
