//! Compare all four error-control schemes on one workload — a one-stop
//! miniature of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example compare_schemes
//! ```

use rlnoc::core::benchmarks::WorkloadProfile;
use rlnoc::core::experiment::{ErrorControlScheme, Experiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadProfile::canneal();
    println!(
        "workload: {} (mean injection {:.3} packets/node/cycle)\n",
        workload.name,
        workload.mean_injection_rate()
    );
    println!(
        "{:<10}{:>10}{:>12}{:>12}{:>14}{:>14}",
        "scheme", "latency", "exec", "retx", "eff (fl/J)", "dyn power (W)"
    );
    let mut baseline_latency = None;
    for scheme in ErrorControlScheme::ALL {
        let report = Experiment::builder()
            .scheme(scheme)
            .workload(workload.clone())
            .seed(42)
            .pretrain_cycles(200_000)
            .measure_cycles(20_000)
            .build()?
            .run();
        let latency = report.avg_latency_cycles;
        baseline_latency.get_or_insert(latency);
        println!(
            "{:<10}{:>10.1}{:>12}{:>12.0}{:>14.3e}{:>14.4}",
            scheme.to_string(),
            latency,
            report.execution_cycles,
            report.retransmitted_packets_equiv,
            report.energy_efficiency(),
            report.dynamic_power_w()
        );
    }
    if let Some(base) = baseline_latency {
        println!(
            "\n(CRC baseline latency = {base:.1} cycles; the paper reports ≈55% reduction for RL)"
        );
    }
    Ok(())
}
