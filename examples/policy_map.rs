//! Visualize what the RL agents learned: per-router temperature and the
//! mode each router prefers in its most-visited state, as mesh heatmaps.
//!
//! ```text
//! cargo run --release --example policy_map
//! ```

use rlnoc::core::benchmarks::WorkloadProfile;
use rlnoc::core::experiment::{ErrorControlScheme, Experiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (report, artifacts) = Experiment::builder()
        .scheme(ErrorControlScheme::ProposedRl)
        .workload(WorkloadProfile::streamcluster())
        .seed(7)
        .pretrain_cycles(200_000)
        .measure_cycles(20_000)
        .build()?
        .run_inspect();

    println!(
        "workload {} — avg latency {:.1} cycles, mode usage {:?}\n",
        report.workload, report.avg_latency_cycles, report.mode_histogram
    );

    println!("per-router temperature (°C):");
    for y in 0..8 {
        for x in 0..8 {
            print!("{:>6.1}", artifacts.temperatures[y * 8 + x]);
        }
        println!();
    }

    let (agents, _space) = artifacts
        .controllers
        .rl_agents()
        .expect("RL scheme exposes agents");
    println!("\npreferred mode in each router's most-visited state:");
    for y in 0..8 {
        for x in 0..8 {
            let q = agents[y * 8 + x].q_table();
            let mode = q
                .visited_states()
                .first()
                .map(|&(s, _)| q.best_action(s))
                .unwrap_or(0);
            print!("{mode:>3}");
        }
        println!();
    }
    println!("\n(0 = ECC off, 1 = ARQ+ECC, 2 = pre-retransmission, 3 = timing relaxation)");
    Ok(())
}
