//! Quickstart: run the proposed RL scheme on one PARSEC-like workload
//! and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rlnoc::core::benchmarks::WorkloadProfile;
use rlnoc::core::experiment::{ErrorControlScheme, Experiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = Experiment::builder()
        .scheme(ErrorControlScheme::ProposedRl)
        .workload(WorkloadProfile::bodytrack())
        .seed(42)
        .pretrain_cycles(120_000)
        .measure_cycles(20_000)
        .build()?
        .run();

    println!("scheme:            {}", report.scheme);
    println!("workload:          {}", report.workload);
    println!(
        "packets:           {} delivered / {} offered",
        report.packets_delivered, report.packets_injected
    );
    println!("avg E2E latency:   {:.1} cycles", report.avg_latency_cycles);
    println!("p99 latency:       {} cycles", report.p99_latency_cycles);
    println!("execution time:    {} cycles", report.execution_cycles);
    println!(
        "retransmissions:   {:.1} packet-equivalents ({} hop flits, {} full packets)",
        report.retransmitted_packets_equiv,
        report.flit_retransmissions,
        report.packet_retransmissions
    );
    println!(
        "energy:            {:.2} µJ dynamic, {:.2} µJ static, {:.3} µJ control",
        report.dynamic_energy_j * 1e6,
        report.static_energy_j * 1e6,
        report.control_energy_j * 1e6
    );
    println!(
        "energy efficiency: {:.2e} flits/J",
        report.energy_efficiency()
    );
    println!(
        "temperatures:      mean {:.1} °C, max {:.1} °C",
        report.mean_temperature_c, report.max_temperature_c
    );
    println!(
        "mode usage:        {:?} (router-epochs in modes 0-3)",
        report.mode_histogram
    );
    Ok(())
}
